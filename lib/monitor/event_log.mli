(** Per-query event log: a fixed-capacity ring buffer of structured
    records fed from the middleware pipeline, with deterministic
    head-based sampling and always-keep overrides for failures and slow
    queries.  Every event (kept or not) also feeds the aggregate
    [monitor.*] counters and the [monitor.query_us] latency histogram. *)

val queries_total : Tango_obs.Counter.t
(** ["monitor.queries"] — every observed pipeline run. *)

val query_errors : Tango_obs.Counter.t
(** ["monitor.query_errors"] — runs that raised. *)

val events_kept : Tango_obs.Counter.t
(** ["monitor.events_kept"] — records admitted to the ring. *)

val events_sampled_out : Tango_obs.Counter.t
(** ["monitor.events_sampled_out"] — records dropped by sampling. *)

val query_us : Tango_obs.Histogram.t
(** ["monitor.query_us"] — end-to-end pipeline latency, every run. *)

(** Why a record was admitted. *)
type keep_reason =
  | Sampled  (** kept by the 1-in-[sample_every] head sample *)
  | Slow  (** at least [slow_keep_us] slow — always kept *)
  | Failed  (** the pipeline raised — always kept *)
  | Tail
      (** landed strictly above the latency bucket holding the current
          p99 (with at least 32 prior observations) — always kept, so
          every exemplar-flagged tail query resolves to a record *)

type record = {
  seq : int;  (** arrival ordinal (0-based, counts dropped events too) *)
  at_us : float;  (** wall clock at pipeline entry *)
  kind : string;  (** ["query"] | ["run_plan"] | ["run_fixed"] *)
  sql : string option;
  fingerprint : string option;  (** whole-plan fingerprint *)
  signature : string option;  (** one-line plan summary *)
  total_us : float;  (** end-to-end pipeline wall time *)
  parse_us : float;
  optimize_us : float;
  translate_us : float;
  execute_us : float;
  mw_exec_us : float;
      (** middleware-side execution: execute minus boundary time *)
  transfer_us : float;  (** Σ per-backend transfer time *)
  gather_wait_us : float;  (** Σ per-backend gather-wait time *)
  parse_alloc_bytes : int;  (** per-phase allocation deltas … *)
  optimize_alloc_bytes : int;
  translate_alloc_bytes : int;
  transfer_alloc_bytes : int;  (** … Σ backend boundary allocation *)
  mw_exec_alloc_bytes : int;  (** … execute minus boundary allocation *)
  alloc_bytes : int;  (** whole-run allocation (serving domain) *)
  minor_collections : int;  (** whole-run GC counts … *)
  major_collections : int;
  promoted_words : int;
  backends : (string * Tango_core.Middleware.backend_breakdown) list;
      (** per-backend latency attribution, first-touch order *)
  trace : Tango_obs.Trace.span option;
      (** the run's trace when tracing was on — the [/queries/<seq>]
          drill-down grafts it into a Chrome trace with backend lanes *)
  cache_hit : bool;
      (** answered from the plan cache — parse/optimize were skipped, so
          a zero [optimize_us] means "skipped", not "instantaneous" *)
  cache_class : string;
      (** ["template-hit"] | ["exact-hit"] | ["miss"]; [""] when the run
          was not a cache-eligible query *)
  rows : int;  (** result cardinality *)
  mw_operators : int;  (** middleware-resident operators executed *)
  transfers : int;  (** [TRANSFER^M] statements issued *)
  tm_rows : int;  (** rows shipped DBMS -> middleware across [T^M] *)
  td_rows : int;  (** rows materialized middleware -> DBMS across [T^D] *)
  roundtrips : int;  (** client round trips (inclusive, whole plan) *)
  q_rows : float option;  (** mean cardinality q-error, when profiling *)
  q_cost : float option;  (** mean cost q-error, when profiling *)
  verify_errors : int;  (** error-severity verification findings *)
  verify_warnings : int;
  error : string option;  (** exception text when the pipeline raised *)
  kept : keep_reason;
}

type t

val create :
  ?capacity:int -> ?sample_every:int -> ?slow_keep_us:float -> unit -> t
(** [capacity] (default 256) bounds the ring, oldest evicted first.
    [sample_every] (default 1 = keep everything) keeps each
    [sample_every]-th arrival by 0-based ordinal.  [slow_keep_us]
    (default 0 = off) always keeps events at least this slow, regardless
    of sampling; failures are always kept. *)

val capacity : t -> int

val seen : t -> int
(** Events offered so far, kept or not. *)

val kept : t -> int
(** Records admitted so far (>= stored: eviction does not decrement). *)

val record_of_event :
  ?seq:int ->
  ?kept:keep_reason ->
  Tango_core.Middleware.query_event ->
  record
(** Pure conversion: derives the transfer-boundary numbers from the
    executed operator tree, q-errors from the profiling analysis, and
    finding counts from the verification diagnostics. *)

val observe : t -> Tango_core.Middleware.query_event -> unit
(** Feed one pipeline event: updates the aggregate metrics, applies
    admission, and appends the record when kept.  Kept observations
    carry a {!Tango_obs.Histogram.exemplar} (seq + plan fingerprint)
    into [monitor.query_us], so an exemplar seen on [/metrics] always
    resolves through {!find}.  The function to hand to
    {!Tango_core.Middleware.set_query_observer}. *)

val find : t -> int -> record option
(** The stored record with this [seq], if it was kept and has not been
    evicted. *)

val recent : ?n:int -> t -> record list
(** Up to [n] (default: all stored) most recent records, newest first. *)

val keep_reason_name : keep_reason -> string
val record_to_json : record -> Tango_obs.Json.t

val to_json : ?n:int -> t -> Tango_obs.Json.t
(** JSON array of {!recent}, newest first. *)
