(** Prometheus text-format (exposition format 0.0.4) rendering of
    {!Tango_obs.Registry} snapshots.

    Counters render as [counter] families; histograms render as
    [histogram] families with the cumulative [le=...] bucket series the
    registry carries ({!Tango_obs.Registry.histogram_stats.buckets}),
    plus [_sum] and [_count].  Metric names are derived from the dotted
    registry names ([client.roundtrips] -> [tango_client_roundtrips]),
    so every in-process metric is scrapeable without per-metric
    declarations. *)

open Tango_obs

let default_namespace = "tango"

(* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the namespace
   prefix guarantees a legal first character. *)
let metric_name ?(namespace = default_namespace) raw =
  let b = Buffer.create (String.length raw + String.length namespace + 1) in
  if namespace <> "" then begin
    Buffer.add_string b namespace;
    Buffer.add_char b '_'
  end;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    raw;
  Buffer.contents b

let le_label bound =
  if Float.is_finite bound then Printf.sprintf "%g" bound else "+Inf"

(* Sample values: integral floats print without a fraction (Prometheus
   parses either); non-finite values print as Go-style literals. *)
let sample_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_fragment = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let gauge ?namespace ~name ?(labels = []) value =
  let m = metric_name ?namespace name in
  Printf.sprintf "# TYPE %s gauge\n%s%s %s\n" m m (labels_fragment labels)
    (sample_value value)

let render_counter b ?namespace (name, value) =
  let m = metric_name ?namespace name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m value)

let render_histogram b ?namespace (name, (h : Registry.histogram_stats)) =
  let m = metric_name ?namespace name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
  List.iter
    (fun (bound, c) ->
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (le_label bound) c))
    h.Registry.buckets;
  Buffer.add_string b
    (Printf.sprintf "%s_sum %s\n" m (sample_value h.Registry.sum));
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" m h.Registry.count)

let render ?namespace (s : Registry.snapshot) =
  let b = Buffer.create 4096 in
  List.iter (render_counter b ?namespace) s.Registry.counters;
  List.iter (render_histogram b ?namespace) s.Registry.histograms;
  Buffer.contents b

let content_type = "text/plain; version=0.0.4; charset=utf-8"
