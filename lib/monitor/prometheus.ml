(** Prometheus text-format (exposition format 0.0.4 / OpenMetrics)
    rendering of {!Tango_obs.Registry} snapshots.

    Counters render as [counter] families; histograms render as
    [histogram] families with the cumulative [le=...] bucket series the
    registry carries ({!Tango_obs.Registry.histogram_stats.buckets}),
    plus [_sum] and [_count].  Metric names are derived from the dotted
    registry names ([client.roundtrips] -> [tango_client_roundtrips]),
    so every in-process metric is scrapeable without per-metric
    declarations.

    Two refinements over a plain character map:

    - per-backend counters ([backend.<name>.roundtrips] etc., arbitrary
      backend names) fold into one labeled family per tail —
      [tango_backend_roundtrips{backend="<name>"}] — with the name
      escaped as a label value instead of mangled into the metric name,
      so scrapes never see an illegal family and per-backend series stay
      aggregatable;
    - when [exemplars:true] (the OpenMetrics mode negotiated by
      [/metrics]), bucket samples carry the registry's last-per-bucket
      exemplars as OpenMetrics exemplar syntax
      ([... # {seq="…",trace_id="…"} value timestamp]); the endpoint
      closes the exposition with {!eof} after any appended gauges. *)

open Tango_obs

let default_namespace = "tango"

(* Prometheus metric names are restricted to [a-zA-Z0-9_] here (we do
   not emit recording-rule colons); the namespace prefix guarantees a
   legal first character. *)
let metric_name ?(namespace = default_namespace) raw =
  let b = Buffer.create (String.length raw + String.length namespace + 1) in
  if namespace <> "" then begin
    Buffer.add_string b namespace;
    Buffer.add_char b '_'
  end;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    raw;
  Buffer.contents b

let le_label bound =
  if Float.is_finite bound then Printf.sprintf "%g" bound else "+Inf"

(* Sample values: integral floats print without a fraction (Prometheus
   parses either); non-finite values print as Go-style literals. *)
let sample_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let labels_fragment = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let gauge ?namespace ~name ?(labels = []) value =
  let m = metric_name ?namespace name in
  Printf.sprintf "# TYPE %s gauge\n%s%s %s\n" m m (labels_fragment labels)
    (sample_value value)

(* [backend.<name>.<tail>] -> [Some (name, tail)].  Backend names may
   themselves contain dots, so the tail is the segment after the *last*
   dot. *)
let backend_counter raw =
  let prefix = "backend." in
  let plen = String.length prefix in
  if String.length raw > plen && String.sub raw 0 plen = prefix then
    match String.rindex_opt raw '.' with
    | Some i when i > plen - 1 && i < String.length raw - 1 ->
        let name = String.sub raw plen (i - plen) in
        let tail = String.sub raw (i + 1) (String.length raw - i - 1) in
        if name = "" then None else Some (name, tail)
    | _ -> None
  else None

let render_counter b ?namespace (name, value) =
  let m = metric_name ?namespace name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m value)
[@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

(* One labeled family per backend-counter tail:
   # TYPE tango_backend_roundtrips counter
   tango_backend_roundtrips{backend="shard0"} 12
   tango_backend_roundtrips{backend="shard1"} 9 *)
let render_backend_counters b ?namespace groups =
  let tails =
    List.sort_uniq compare (List.map (fun (_, tail, _) -> tail) groups)
  in
  List.iter
    (fun tail ->
      let m = metric_name ?namespace ("backend_" ^ tail) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
      List.iter
        (fun (name, t, value) ->
          if String.equal t tail then
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" m
                 (labels_fragment [ ("backend", name) ])
                 value))
        groups)
    tails
[@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

(* OpenMetrics exemplar suffix: [ # {seq="…",trace_id="…"} value ts]
   with the timestamp in seconds. *)
let exemplar_fragment (ex : Histogram.exemplar) =
  Printf.sprintf " # {seq=\"%d\",trace_id=\"%s\"} %s %s" ex.Histogram.ex_seq
    (escape_label_value ex.Histogram.ex_trace_id)
    (sample_value ex.Histogram.ex_value)
    (Printf.sprintf "%.6f" (ex.Histogram.ex_at_us /. 1e6))

let render_histogram b ?namespace ?(exemplars = false)
    (name, (h : Registry.histogram_stats)) =
  let m = metric_name ?namespace name in
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
  List.iter
    (fun (bound, c) ->
      let ex =
        if exemplars then
          match List.assoc_opt bound h.Registry.exemplars with
          | Some e -> exemplar_fragment e
          | None -> ""
        else ""
      in
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" m (le_label bound) c ex))
    h.Registry.buckets;
  Buffer.add_string b
    (Printf.sprintf "%s_sum %s\n" m (sample_value h.Registry.sum));
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" m h.Registry.count)
[@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

(* Lock-contention families from the {!Dsync.Profile} registry, labeled
   by lock name:
   tango_lock_acquires{lock="cache.plan_cache"} 41
   tango_lock_wait_us_bucket{lock="cache.plan_cache",le="1"} 3 … *)
let render_lock_profile b ?namespace (locks : Dsync.Profile.snapshot list) =
  if locks <> [] then begin
    let counter name value_of =
      let m = metric_name ?namespace ("lock_" ^ name) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
      List.iter
        (fun (l : Dsync.Profile.snapshot) ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m
               (labels_fragment [ ("lock", l.Dsync.Profile.lock_name) ])
               (value_of l)))
        locks
    in
    counter "acquires" (fun l -> l.Dsync.Profile.acquires);
    counter "contended" (fun l -> l.Dsync.Profile.contended);
    let histogram name buckets_of sum_of count_of =
      let m = metric_name ?namespace ("lock_" ^ name) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
      List.iter
        (fun (l : Dsync.Profile.snapshot) ->
          let lbl = ("lock", l.Dsync.Profile.lock_name) in
          List.iter
            (fun (bound, c) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" m
                   (labels_fragment [ lbl; ("le", le_label bound) ])
                   c))
            (buckets_of l);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" m (labels_fragment [ lbl ])
               (sample_value (sum_of l)));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m (labels_fragment [ lbl ])
               (count_of l)))
        locks
    in
    histogram "wait_us"
      (fun l -> l.Dsync.Profile.wait_buckets)
      (fun l -> l.Dsync.Profile.wait_us)
      (fun l -> l.Dsync.Profile.contended);
    histogram "hold_us"
      (fun l -> l.Dsync.Profile.hold_buckets)
      (fun l -> l.Dsync.Profile.hold_us)
      (fun l -> l.Dsync.Profile.acquires)
  end
[@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

let lock_profile ?namespace locks =
  let b = Buffer.create 1024 in
  render_lock_profile b ?namespace locks;
  Buffer.contents b

(* Process-runtime gauges: heap shape plus one gauge set per domain
   that has published its counters (tango_gc_domain_*{domain="0"}). *)
let runtime_gauges ?namespace () =
  let b = Buffer.create 1024 in
  let heap = Runtime.heap () in
  Buffer.add_string b
    (gauge ?namespace ~name:"gc.heap_words"
       (float_of_int heap.Runtime.heap_words));
  Buffer.add_string b
    (gauge ?namespace ~name:"gc.top_heap_words"
       (float_of_int heap.Runtime.top_heap_words));
  Buffer.add_string b
    (gauge ?namespace ~name:"gc.compactions"
       (float_of_int heap.Runtime.compactions));
  let domains = Runtime.domains () in
  let family tail value_of =
    let m = metric_name ?namespace ("gc_domain_" ^ tail) in
    Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" m);
    List.iter
      (fun (d : Runtime.domain_stats) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" m
             (labels_fragment [ ("domain", string_of_int d.Runtime.domain) ])
             (value_of d)))
      domains
  in
  if domains <> [] then begin
    family "alloc_bytes" (fun d -> d.Runtime.d_alloc_bytes);
    family "minor_collections" (fun d -> d.Runtime.d_minor_collections);
    family "major_collections" (fun d -> d.Runtime.d_major_collections);
    family "promoted_words" (fun d -> d.Runtime.d_promoted_words)
  end;
  Buffer.contents b
[@@tango.unguarded "renders into a call-local Buffer sink; never shared"]

let render ?namespace ?(exemplars = false) (s : Registry.snapshot) =
  let b = Buffer.create 4096 in
  let backend, plain =
    List.partition_map
      (fun (name, value) ->
        match backend_counter name with
        | Some (bname, tail) -> Either.Left (bname, tail, value)
        | None -> Either.Right (name, value))
      s.Registry.counters
  in
  List.iter (render_counter b ?namespace) plain;
  render_backend_counters b ?namespace backend;
  List.iter (render_histogram b ?namespace ~exemplars) s.Registry.histograms;
  Buffer.contents b

(* The OpenMetrics terminator — appended by the endpoint as the very
   last line, after any gauges that follow {!render}'s output. *)
let eof = "# EOF\n"

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"
