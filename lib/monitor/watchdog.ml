(** The SLO drill-down: correlates burn with its likely cause.

    A burning SLO says {e that} the service is slow, not {e why}.  The
    watchdog pulls the signals the middleware already tracks — burn
    state, cardinality/cost misestimation trend, plan-cache hit rate,
    topology changes — next to a tail-record analysis of the event log
    that names the dominant backend and the dominant pipeline phase, so
    [/debug/watchdog] answers "who is burning my budget" in one fetch.

    The tracker is stateful across evaluations: the cache-hit-rate
    signal compares against the rate seen at the {e previous} check
    (a trend, not an absolute), and the topology signal fires when the
    generation advanced since the previous check. *)

type signal = {
  name : string;
  firing : bool;
  detail : string;  (** human-readable evidence, firing or not *)
}

type verdict = {
  state : Slo.state;
  signals : signal list;
  dominant_backend : (string * float) option;
  dominant_phase : (string * float) option;
  tail_records : int;
}

module Dsync = Tango_obs.Dsync

type t = {
  q_error_warn : float;
  hit_rate_drop : float;
  tail_fraction : float;
  contention_warn : float;
  replan_warn : int;
  lock : Dsync.lock;  (* guards the cross-evaluation trend fields *)
  mutable last_generation : int;
  mutable last_hit_rate : float option;
  mutable last_wait_us : float;
  mutable last_check_mono_us : float option;
}

let create ?(q_error_warn = 2.0) ?(hit_rate_drop = 0.2)
    ?(tail_fraction = 0.9) ?(contention_warn = 0.25) ?(replan_warn = 2)
    ~generation () =
  if not (tail_fraction >= 0.0 && tail_fraction < 1.0) then
    invalid_arg "Watchdog.create: tail_fraction must be in [0, 1)";
  {
    q_error_warn;
    hit_rate_drop;
    tail_fraction;
    contention_warn;
    replan_warn;
    lock = Dsync.named_lock "monitor.watchdog";
    last_generation = generation;
    last_hit_rate = None;
    last_wait_us = 0.0;
    last_check_mono_us = None;
  }

(* ------------------------------------------------------------------ *)
(* Tail attribution                                                     *)
(* ------------------------------------------------------------------ *)

(* Records at or above the [tail_fraction] latency quantile of what the
   ring currently holds (always at least the slowest record). *)
let tail_records t (records : Event_log.record list) =
  match records with
  | [] -> []
  | _ ->
      let totals =
        List.sort compare
          (List.map (fun (r : Event_log.record) -> r.Event_log.total_us) records)
      in
      let n = List.length totals in
      let cut =
        List.nth totals
          (min (n - 1) (int_of_float (t.tail_fraction *. float_of_int n)))
      in
      List.filter
        (fun (r : Event_log.record) -> r.Event_log.total_us >= cut)
        records

let argmax = function
  | [] -> None
  | (k0, v0) :: rest ->
      let k, v =
        List.fold_left
          (fun (bk, bv) (k, v) -> if v > bv then (k, v) else (bk, bv))
          (k0, v0) rest
      in
      let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 rest +. v0 in
      if total <= 0.0 then None else Some (k, v /. total)

(* Which backend the tail spends its boundary time on: argmax over
   Σ (transfer + gather-wait) per backend, as a share of the tail's
   whole boundary time. *)
let dominant_backend tail =
  let sums : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r : Event_log.record) ->
      List.iter
        (fun (name, (b : Tango_core.Middleware.backend_breakdown)) ->
          if not (Hashtbl.mem sums name) then order := name :: !order;
          Hashtbl.replace sums name
            (Option.value ~default:0.0 (Hashtbl.find_opt sums name)
            +. b.Tango_core.Middleware.us +. b.Tango_core.Middleware.wait_us))
        r.Event_log.backends)
    tail;
  argmax
    (List.rev_map (fun name -> (name, Hashtbl.find sums name)) !order)

(* Which pipeline phase the tail spends its wall time in. *)
let dominant_phase (tail : Event_log.record list) =
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 tail in
  argmax
    [
      ("parse", sum (fun r -> r.Event_log.parse_us));
      ("optimize", sum (fun r -> r.Event_log.optimize_us));
      ("translate", sum (fun r -> r.Event_log.translate_us));
      ("mw-exec", sum (fun r -> r.Event_log.mw_exec_us));
      ("transfer", sum (fun r -> r.Event_log.transfer_us));
      ("gather-wait", sum (fun r -> r.Event_log.gather_wait_us));
    ]

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let slo_signal (v : Slo.verdict) =
  {
    name = "slo_burn";
    firing = v.Slo.state <> Slo.Ok;
    detail =
      Printf.sprintf "state=%s latency_burn=%.2f/%.2f error_burn=%.2f/%.2f"
        (Slo.state_name v.Slo.state)
        v.Slo.latency_burn_short v.Slo.latency_burn_long v.Slo.error_burn_short
        v.Slo.error_burn_long;
  }

(* Worst per-cost-factor mean q-error in the feedback store: sustained
   misestimation means the optimizer is likely picking wrong plans. *)
let q_error_signal t feedback =
  match feedback with
  | None -> { name = "q_error"; firing = false; detail = "no profiling" }
  | Some fb -> (
      let worst =
        List.fold_left
          (fun acc (factor, (samples, q)) ->
            match acc with
            | Some (_, _, bq) when bq >= q -> acc
            | _ when samples > 0 -> Some (factor, samples, q)
            | _ -> acc)
          None
          (Tango_profile.Feedback.factor_q fb)
      in
      match worst with
      | None -> { name = "q_error"; firing = false; detail = "no samples" }
      | Some (factor, samples, q) ->
          {
            name = "q_error";
            firing = q > t.q_error_warn;
            detail =
              Printf.sprintf "worst factor %s mean_q=%.2f over %d samples"
                factor q samples;
          })

(* Hit rate now vs. the previous check: a drop means the workload left
   the cached plans behind (invalidation storm, shifted query mix). *)
let cache_signal t cache =
  match cache with
  | None -> { name = "cache_hit_rate"; firing = false; detail = "no plan cache" }
  | Some (s : Tango_cache.Plan_cache.stats) ->
      let total = s.Tango_cache.Plan_cache.hits + s.Tango_cache.Plan_cache.misses in
      if total = 0 then
        { name = "cache_hit_rate"; firing = false; detail = "no lookups" }
      else begin
        let rate =
          float_of_int s.Tango_cache.Plan_cache.hits /. float_of_int total
        in
        let previous =
          Dsync.protect t.lock (fun () ->
              let p = t.last_hit_rate in
              t.last_hit_rate <- Some rate;
              p)
        in
        match previous with
        | Some prev when prev -. rate > t.hit_rate_drop ->
            {
              name = "cache_hit_rate";
              firing = true;
              detail =
                Printf.sprintf "hit rate dropped %.2f -> %.2f%s" prev rate
                  (match s.Tango_cache.Plan_cache.last_invalidation with
                  | Some reason -> "; last invalidation: " ^ reason
                  | None -> "");
            }
        | _ ->
            {
              name = "cache_hit_rate";
              firing = false;
              detail = Printf.sprintf "hit rate %.2f" rate;
            }
      end

(* A single cache entry accumulating sensitivity-guard re-optimizations
   is a parameter-sensitive plan: no one generic plan serves its whole
   binding space, so its latency depends on which selectivity region the
   workload hits.  Evidence for "the same statement is sometimes slow". *)
let replan_signal t cache =
  match cache with
  | None ->
      {
        name = "parameter_sensitive_plan";
        firing = false;
        detail = "no plan cache";
      }
  | Some (s : Tango_cache.Plan_cache.stats) ->
      {
        name = "parameter_sensitive_plan";
        firing = s.Tango_cache.Plan_cache.max_replans >= t.replan_warn;
        detail =
          Printf.sprintf
            "%d replans total; worst entry holds %d region plans"
            s.Tango_cache.Plan_cache.replans
            s.Tango_cache.Plan_cache.max_replans;
      }

let topology_signal t ~generation =
  let previous =
    Dsync.protect t.lock (fun () ->
        let p = t.last_generation in
        t.last_generation <- generation;
        p)
  in
  if generation > previous then
    {
      name = "topology_generation";
      firing = true;
      detail =
        Printf.sprintf "generation bumped %d -> %d since last check" previous
          generation;
    }
  else
    {
      name = "topology_generation";
      firing = false;
      detail = Printf.sprintf "generation %d" generation;
    }

(* Lock wait accumulated since the previous check, as a share of the
   wall time between checks (monotonic clock).  With several domains
   the share can exceed 1.0 — it is wait-seconds per wall-second across
   the process.  The first check only primes the baseline. *)
let contention_signal t =
  let snaps = Tango_obs.Dsync.Profile.snapshot () in
  let total_wait =
    List.fold_left
      (fun acc (s : Tango_obs.Dsync.Profile.snapshot) ->
        acc +. s.Tango_obs.Dsync.Profile.wait_us)
      0.0 snaps
  in
  let now_mono = Tango_obs.mono_us () in
  let previous =
    Dsync.protect t.lock (fun () ->
        let p = (t.last_wait_us, t.last_check_mono_us) in
        t.last_wait_us <- total_wait;
        t.last_check_mono_us <- Some now_mono;
        p)
  in
  match previous with
  | _, None ->
      { name = "lock_contention"; firing = false; detail = "first check" }
  | prev_wait, Some prev_mono ->
      let dw = Float.max 0.0 (total_wait -. prev_wait) in
      let dt = Float.max 1.0 (now_mono -. prev_mono) in
      let share = dw /. dt in
      let top =
        List.fold_left
          (fun acc (s : Tango_obs.Dsync.Profile.snapshot) ->
            match acc with
            | Some (b : Tango_obs.Dsync.Profile.snapshot)
              when b.Tango_obs.Dsync.Profile.wait_us
                   >= s.Tango_obs.Dsync.Profile.wait_us ->
                acc
            | _ -> Some s)
          None snaps
      in
      {
        name = "lock_contention";
        firing = share > t.contention_warn;
        detail =
          Printf.sprintf "wait/wall %.3f since last check%s" share
            (match top with
            | Some l when l.Tango_obs.Dsync.Profile.wait_us > 0.0 ->
                Printf.sprintf "; top lock %s (%.0fus cumulative wait)"
                  l.Tango_obs.Dsync.Profile.lock_name
                  l.Tango_obs.Dsync.Profile.wait_us
            | _ -> "");
      }

(* ------------------------------------------------------------------ *)
(* Verdict                                                              *)
(* ------------------------------------------------------------------ *)

let evaluate t ~now_us ~slo ~log ?feedback ?cache ~generation () : verdict =
  let slo_verdict = Slo.evaluate slo ~now_us in
  let signals =
    [
      slo_signal slo_verdict;
      q_error_signal t feedback;
      cache_signal t cache;
      replan_signal t cache;
      topology_signal t ~generation;
      contention_signal t;
    ]
  in
  let tail = tail_records t (Event_log.recent log) in
  let state =
    if slo_verdict.Slo.state <> Slo.Ok then slo_verdict.Slo.state
    else if List.exists (fun s -> s.firing) signals then Slo.Warning
    else Slo.Ok
  in
  {
    state;
    signals;
    dominant_backend = dominant_backend tail;
    dominant_phase = dominant_phase tail;
    tail_records = List.length tail;
  }

let verdict_to_json (v : verdict) : Tango_obs.Json.t =
  let open Tango_obs.Json in
  let dominant = function
    | None -> Null
    | Some (name, share) ->
        Obj [ ("name", String name); ("share", Float share) ]
  in
  Obj
    [
      ("state", String (Slo.state_name v.state));
      ( "signals",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("signal", String s.name);
                   ("firing", Bool s.firing);
                   ("detail", String s.detail);
                 ])
             v.signals) );
      ("dominant_backend", dominant v.dominant_backend);
      ("dominant_phase", dominant v.dominant_phase);
      ("tail_records", Int v.tail_records);
    ]
