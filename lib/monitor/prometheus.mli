(** Prometheus text-format (exposition format 0.0.4) rendering of
    {!Tango_obs.Registry} snapshots: counters as [counter] families,
    histograms as [histogram] families with cumulative [le=...] buckets,
    [_sum] and [_count]. *)

val default_namespace : string
(** ["tango"] — prepended to every metric name. *)

val metric_name : ?namespace:string -> string -> string
(** Legal Prometheus metric name for a dotted registry name:
    [metric_name "client.roundtrips" = "tango_client_roundtrips"].
    Characters outside [[a-zA-Z0-9_:]] become underscores. *)

val le_label : float -> string
(** Bucket bound rendering: ["+Inf"] for [infinity], shortest decimal
    otherwise. *)

val gauge :
  ?namespace:string ->
  name:string ->
  ?labels:(string * string) list ->
  float ->
  string
(** One complete gauge family ([# TYPE] line plus a single sample) —
    for values that are not registry counters, e.g. SLO burn rates. *)

val render : ?namespace:string -> Tango_obs.Registry.snapshot -> string
(** The whole snapshot as exposition text, counters then histograms,
    each preceded by its [# TYPE] line. *)

val content_type : string
(** The HTTP [Content-Type] for {!render} output. *)
