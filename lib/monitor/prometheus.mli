(** Prometheus text-format (exposition format 0.0.4) rendering of
    {!Tango_obs.Registry} snapshots: counters as [counter] families,
    histograms as [histogram] families with cumulative [le=...] buckets,
    [_sum] and [_count]. *)

val default_namespace : string
(** ["tango"] — prepended to every metric name. *)

val metric_name : ?namespace:string -> string -> string
(** Legal Prometheus metric name for a dotted registry name:
    [metric_name "client.roundtrips" = "tango_client_roundtrips"].
    Characters outside [[a-zA-Z0-9_]] become underscores. *)

val escape_label_value : string -> string
(** Escape backslash, double quote and newline for use inside a
    Prometheus label value. *)

val backend_counter : string -> (string * string) option
(** [backend_counter "backend.<name>.<tail>"] is [Some (name, tail)];
    [None] for any other shape.  Backend names may contain dots — the
    tail is the segment after the last dot. *)

val le_label : float -> string
(** Bucket bound rendering: ["+Inf"] for [infinity], shortest decimal
    otherwise. *)

val gauge :
  ?namespace:string ->
  name:string ->
  ?labels:(string * string) list ->
  float ->
  string
(** One complete gauge family ([# TYPE] line plus a single sample) —
    for values that are not registry counters, e.g. SLO burn rates. *)

val lock_profile :
  ?namespace:string -> Tango_obs.Dsync.Profile.snapshot list -> string
(** Lock-contention families from a {!Tango_obs.Dsync.Profile} snapshot,
    labeled by lock name: [tango_lock_acquires] / [tango_lock_contended]
    counters and [tango_lock_wait_us] / [tango_lock_hold_us] histograms
    (with per-lock [_sum]/[_count]).  Empty string for an empty list. *)

val runtime_gauges : ?namespace:string -> unit -> string
(** Process-runtime gauges: [tango_gc_heap_words] /
    [tango_gc_top_heap_words] / [tango_gc_compactions], plus
    [tango_gc_domain_*{domain="<id>"}] gauge families for every domain
    that has published counters via {!Tango_obs.Runtime.touch}. *)

val render :
  ?namespace:string -> ?exemplars:bool -> Tango_obs.Registry.snapshot -> string
(** The whole snapshot as exposition text: plain counters, then
    per-backend counters folded into labeled [tango_backend_<tail>]
    families, then histograms — each family preceded by its [# TYPE]
    line.  With [exemplars:true] (default false) bucket samples carry
    OpenMetrics exemplar syntax (a [#]-prefixed labelset, value and
    timestamp after the sample); the caller appends {!eof} last. *)

val eof : string
(** ["# EOF\n"] — the OpenMetrics exposition terminator; must be the
    very last line, so the endpoint appends it after any extra gauges. *)

val content_type : string
(** The HTTP [Content-Type] for {!render} output (0.0.4 text format). *)

val openmetrics_content_type : string
(** The HTTP [Content-Type] for exemplar-mode {!render} output. *)
