(** Minimal dependency-free HTTP/1.1 server over Unix sockets.

    One request per connection (responses always carry
    [Connection: close]); request-line and header parsing,
    [Content-Length] bodies, percent-decoded query strings.  The accept
    loop is sequential — the middleware session it fronts is
    single-threaded anyway — and [max_requests] bounds it for tests and
    smoke jobs.  Nothing here depends on the rest of the middleware: a
    handler is just [request -> response]. *)

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** decoded path, no query string *)
  query : (string * string) list;  (** decoded query parameters *)
  headers : (string * string) list;  (** keys lowercased *)
  body : string;
}

type response = { status : int; content_type : string; body : string }

val response : ?status:int -> ?content_type:string -> string -> response
(** Defaults: status 200, [text/plain; charset=utf-8]. *)

val reason_phrase : int -> string

val percent_decode : string -> string
(** ['%xx'] escapes and ['+'] for space. *)

val parse_query : string -> (string * string) list
(** Decode a raw query string (["a=1&b=2"]). *)

val handle_connection : Unix.file_descr -> (request -> response) -> unit
(** Serve exactly one request from an open socket: parse, run the
    handler, write the response.  Handler exceptions become a 500,
    malformed requests a 400, and a connection closed before any byte is
    ignored.  The caller closes the socket. *)

val listen : ?host:string -> port:int -> unit -> Unix.file_descr
(** Bind and listen on [host] (default ["127.0.0.1"]); [port] 0 picks a
    free port — recover it with {!bound_port}. *)

val bound_port : Unix.file_descr -> int

val accept_loop :
  ?max_requests:int ->
  ?should_stop:(unit -> bool) ->
  Unix.file_descr ->
  (request -> response) ->
  unit
(** Accept and serve connections sequentially, forever — or until
    [max_requests] connections were served or [should_stop] returns
    true.  [should_stop] (default never) is re-checked before every
    accept {e and} whenever a signal interrupts the blocking accept
    (EINTR), so a [Signal_handle] that sets a flag drains the in-flight
    request and then exits the loop — graceful shutdown without
    threads.  Ignores [SIGPIPE]. *)

val serve :
  ?host:string ->
  port:int ->
  ?max_requests:int ->
  ?should_stop:(unit -> bool) ->
  (request -> response) ->
  unit
(** {!listen} + {!accept_loop}, closing the listening socket on exit. *)
