(** SLO drill-down: correlates burn-rate state with the signals that
    usually explain it — misestimation trend, plan-cache hit-rate drops,
    topology-generation bumps — and names the dominant backend and
    pipeline phase of the event log's latency tail.  Backs
    [GET /debug/watchdog]. *)

type signal = {
  name : string;
      (** ["slo_burn"] | ["q_error"] | ["cache_hit_rate"] |
          ["parameter_sensitive_plan"] | ["topology_generation"] |
          ["lock_contention"] *)
  firing : bool;
  detail : string;  (** human-readable evidence, firing or not *)
}

type verdict = {
  state : Slo.state;
      (** the SLO state, lifted to at least [Warning] when any other
          signal fires *)
  signals : signal list;
  dominant_backend : (string * float) option;
      (** backend with the largest share of the tail's boundary time
          (transfer + gather-wait), with that share in [0, 1]; [None]
          when no tail record crossed a boundary *)
  dominant_phase : (string * float) option;
      (** pipeline phase (["parse"], ["optimize"], ["translate"],
          ["mw-exec"], ["transfer"], ["gather-wait"]) with the largest
          share of the tail's wall time *)
  tail_records : int;  (** records the tail analysis covered *)
}

type t

val create :
  ?q_error_warn:float ->
  ?hit_rate_drop:float ->
  ?tail_fraction:float ->
  ?contention_warn:float ->
  ?replan_warn:int ->
  generation:int ->
  unit ->
  t
(** Stateful tracker.  [q_error_warn] (default 2.0): worst
    per-cost-factor mean q-error above this fires [q_error].
    [hit_rate_drop] (default 0.2): a hit-rate fall of more than this
    since the previous {!evaluate} fires [cache_hit_rate].
    [tail_fraction] (default 0.9, must be in [0, 1)): the tail analysis
    covers records at or above this latency quantile of the event-log
    ring.  [contention_warn] (default 0.25): lock wait accumulated
    since the previous check, divided by the wall time between checks,
    above this fires [lock_contention] (the first check only primes the
    baseline).  [replan_warn] (default 2): a single plan-cache entry
    holding at least this many sensitivity-guard region plans fires
    [parameter_sensitive_plan] — that statement's best plan depends on
    its bound values.  [generation] seeds the topology baseline. *)

val evaluate :
  t ->
  now_us:float ->
  slo:Slo.t ->
  log:Event_log.t ->
  ?feedback:Tango_profile.Feedback.t ->
  ?cache:Tango_cache.Plan_cache.stats ->
  generation:int ->
  unit ->
  verdict
(** One check, advancing the tracker's baselines: the cache-hit-rate
    signal compares against the rate at the previous call, and the
    topology signal fires when [generation] advanced since then. *)

val verdict_to_json : verdict -> Tango_obs.Json.t
