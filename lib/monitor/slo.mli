(** Sliding-window SLO tracking with multi-window burn-rate alerting.

    Latency ([latency_goal] of queries within [latency_us]) and
    availability ([error_goal] of queries succeed) objectives over the
    query stream.  The burn rate over a window is the bad-fraction
    divided by the budget [1 - goal]; an alert state fires only when
    {e both} the short and the long window exceed its threshold, and the
    worst state across the two objectives is reported.  The caller
    supplies timestamps, so the engine is deterministic under test. *)

type objective = {
  latency_us : float;  (** per-query latency objective *)
  latency_goal : float;  (** fraction that must meet it, e.g. [0.95] *)
  error_goal : float;  (** fraction that must succeed, e.g. [0.99] *)
  short_window_us : float;
  long_window_us : float;
  warn_burn : float;  (** both-window burn threshold for [Warning] *)
  critical_burn : float;  (** both-window burn threshold for [Critical] *)
}

val default_objective : objective
(** 95% of queries within 100ms, 99% succeed; 1min/10min windows;
    warn at burn 1.0, critical at burn 4.0. *)

type state = Ok | Warning | Critical

val state_name : state -> string
(** ["ok"] / ["warning"] / ["critical"]. *)

val state_rank : state -> int
(** 0 / 1 / 2, monotone in severity. *)

type t

val create : ?objective:objective -> ?max_samples:int -> unit -> t
(** [max_samples] (default 8192) additionally bounds the sample memory;
    beyond it the oldest samples are dropped early.  Raises
    [Invalid_argument] when a goal leaves no error budget or the short
    window exceeds the long one. *)

val objective : t -> objective

val observe : t -> now_us:float -> latency_us:float -> ok:bool -> unit
(** Record one query: [latency_us] against the latency objective, [ok]
    against the availability objective. *)

type window_stats = { total : int; slow : int; failed : int }

type verdict = {
  state : state;
  latency_burn_short : float;
  latency_burn_long : float;
  error_burn_short : float;
  error_burn_long : float;
  short : window_stats;
  long : window_stats;
}

val evaluate : t -> now_us:float -> verdict
(** Burn rates and alert state as of [now_us]; empty windows burn 0. *)

val verdict_to_json : objective -> verdict -> Tango_obs.Json.t
val to_json : t -> now_us:float -> Tango_obs.Json.t

val prometheus_gauges : verdict -> (string * float) list
(** [(dotted name, value)] gauges for the metrics endpoint: the state as
    0/1/2 and the four burn rates. *)
