(** Per-query, per-backend latency attribution.  See the interface for
    the [us] / [wait_us] double-counting contract. *)

type breakdown = {
  rows : int;
  bytes : int;
  us : float;
  wait_us : float;
  alloc_bytes : int;
}

type lane = {
  mutable l_rows : int;
  mutable l_bytes : int;
  mutable l_us : float;
  mutable l_wait_us : float;
  mutable l_alloc_bytes : int;
}

type t = {
  lanes : (string, lane) Hashtbl.t;
  mutable order : string list;  (** first-seen order, reversed *)
}

let create () = { lanes = Hashtbl.create 4; order = [] }

(* The ambient collector, installed around one plan execution. *)
let current : t option ref = ref None

let with_collector t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

let active () = !current <> None

let lane t backend =
  match Hashtbl.find_opt t.lanes backend with
  | Some l -> l
  | None ->
      let l =
        { l_rows = 0; l_bytes = 0; l_us = 0.0; l_wait_us = 0.0; l_alloc_bytes = 0 }
      in
      Hashtbl.replace t.lanes backend l;
      t.order <- backend :: t.order;
      l

let transfer ~backend ~rows ~bytes ~us ~alloc_bytes =
  match !current with
  | None -> ()
  | Some t ->
      let l = lane t backend in
      l.l_rows <- l.l_rows + rows;
      l.l_bytes <- l.l_bytes + bytes;
      l.l_us <- l.l_us +. us;
      l.l_alloc_bytes <- l.l_alloc_bytes + alloc_bytes

let wait ~backend ~us =
  match !current with
  | None -> ()
  | Some t ->
      let l = lane t backend in
      l.l_wait_us <- l.l_wait_us +. us

let transfer_us ~backend =
  match !current with
  | None -> 0.0
  | Some t -> (
      match Hashtbl.find_opt t.lanes backend with
      | Some l -> l.l_us
      | None -> 0.0)

let breakdown t =
  List.rev_map
    (fun name ->
      let l = Hashtbl.find t.lanes name in
      ( name,
        {
          rows = l.l_rows;
          bytes = l.l_bytes;
          us = l.l_us;
          wait_us = l.l_wait_us;
          alloc_bytes = l.l_alloc_bytes;
        } ))
    t.order

let totals lanes =
  List.fold_left
    (fun acc (_, b) ->
      {
        rows = acc.rows + b.rows;
        bytes = acc.bytes + b.bytes;
        us = acc.us +. b.us;
        wait_us = acc.wait_us +. b.wait_us;
        alloc_bytes = acc.alloc_bytes + b.alloc_bytes;
      })
    { rows = 0; bytes = 0; us = 0.0; wait_us = 0.0; alloc_bytes = 0 }
    lanes
