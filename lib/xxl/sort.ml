(** `SORT^M`: external merge sort in the middleware.

    The input is consumed at [init] into sorted runs of at most [run_size]
    tuples; [next] merges the runs through a binary heap.  With the default
    run size, small and medium inputs sort in one in-memory run; large
    inputs exercise the multi-run merge path (the "very large relations"
    enhancement the paper lists as future work).  The sort is stable, which
    the list-equivalence reasoning of the rule set relies on. *)

open Tango_rel

let default_run_size = 65_536

type run = { tuples : Tuple.t array; mutable pos : int }

let sort ?(run_size = default_run_size) (order : Order.t) (arg : Cursor.t) :
    Cursor.t =
  let schema = Cursor.schema arg in
  let cmp = Order.comparator order schema in
  let runs : run list ref = ref [] in
  (* Heap of runs keyed by their current head tuple; ties broken by run
     index to keep the merge stable. *)
  let heap : (Tuple.t * int * run) array ref = ref [||] in
  let heap_len = ref 0 in
  let heap_cmp (t1, i1, _) (t2, i2, _) =
    match cmp t1 t2 with 0 -> Int.compare i1 i2 | c -> c
  in
  let heap_swap i j =
    let tmp = !heap.(i) in
    !heap.(i) <- !heap.(j);
    !heap.(j) <- tmp
  in
  let rec sift_up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if heap_cmp !heap.(i) !heap.(parent) < 0 then begin
        heap_swap i parent;
        sift_up parent
      end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < !heap_len && heap_cmp !heap.(l) !heap.(!smallest) < 0 then
      smallest := l;
    if r < !heap_len && heap_cmp !heap.(r) !heap.(!smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      heap_swap i !smallest;
      sift_down !smallest
    end
  in
  let heap_push entry =
    if !heap_len >= Array.length !heap then begin
      let bigger =
        Array.make (max 4 (2 * Array.length !heap)) entry
      in
      Array.blit !heap 0 bigger 0 !heap_len;
      heap := bigger
    end;
    !heap.(!heap_len) <- entry;
    incr heap_len;
    sift_up (!heap_len - 1)
  in
  let heap_pop () =
    if !heap_len = 0 then None
    else begin
      let top = !heap.(0) in
      decr heap_len;
      if !heap_len > 0 then begin
        !heap.(0) <- !heap.(!heap_len);
        sift_down 0
      end;
      Some top
    end
  in
  let build_runs () =
    runs := [];
    let buf = ref [] in
    let buf_len = ref 0 in
    let flush () =
      if !buf_len > 0 then begin
        let arr = Array.of_list (List.rev !buf) in
        Array.stable_sort cmp arr;
        runs := { tuples = arr; pos = 0 } :: !runs;
        buf := [];
        buf_len := 0
      end
    in
    (* Runs are generated from batch pulls: one closure call per input
       batch rather than per tuple. *)
    let rec consume () =
      match Cursor.next_batch arg with
      | None -> flush ()
      | Some b ->
          Array.iter
            (fun t ->
              buf := t :: !buf;
              incr buf_len;
              if !buf_len >= run_size then flush ())
            b;
          consume ()
    in
    consume ();
    (* Earlier runs get smaller indexes so ties resolve in input order
       (stability across runs). *)
    runs := List.rev !runs;
    heap := [||];
    heap_len := 0;
    List.iteri
      (fun i r ->
        if Array.length r.tuples > 0 then begin
          r.pos <- 1;
          heap_push (r.tuples.(0), i, r)
        end)
      !runs
  in
  Cursor.observed "sort"
    (Cursor.make ~schema
       ~init:(fun () ->
         Cursor.init arg;
         build_runs ())
       ~next:(fun () ->
         match heap_pop () with
         | None -> None
         | Some (t, i, r) ->
             if r.pos < Array.length r.tuples then begin
               heap_push (r.tuples.(r.pos), i, r);
               r.pos <- r.pos + 1
             end;
             Some t))
