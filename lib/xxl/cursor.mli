(** The iterator (cursor) framework of the middleware execution engine,
    modeled on the XXL library the paper builds on: every algorithm is a
    result set with [init]/[next] methods, enabling pipelined execution
    (paper Figure 2).

    Every cursor additionally answers a {e batch-at-a-time} pull,
    {!next_batch}, which delivers the same tuple stream as {!next} in
    array-sized chunks.  Cursors built with {!make} answer it through a
    shim that loops [next]; cursors built with {!make_batched} are
    {e native} batch producers whose per-tuple [next] serves out of an
    internal buffer.  The two entry points may be interleaved freely and
    always agree on the stream. *)

open Tango_rel

type t

val default_batch_size : int
(** Tuples per batch assembled by the shim (256). *)

val make :
  schema:Schema.t -> init:(unit -> unit) -> next:(unit -> Tuple.t option) -> t
(** Tuple-at-a-time constructor; [next_batch] is the looping shim. *)

val make_full :
  schema:Schema.t ->
  init:(unit -> unit) ->
  next:(unit -> Tuple.t option) ->
  next_batch:(unit -> Tuple.t array option) ->
  t
(** Explicit constructor for {e wrappers}: both protocols are supplied,
    typically forwarding to a wrapped cursor's native implementations.
    The caller is responsible for the two entry points delivering the
    same stream. *)

val make_batched :
  schema:Schema.t ->
  init:(unit -> unit) ->
  next_batch:(unit -> Tuple.t array option) ->
  t
(** Native batch constructor.  The producer must return [None] at
    exhaustion and should never return an empty array.  The derived
    per-tuple [next] serves from an internal buffer, so a per-tuple
    consumer over a batched pipeline costs an array index per tuple, not
    a closure chain. *)

val schema : t -> Schema.t

val init : t -> unit
(** Prepare inner structures.  Some algorithms do real work here: sorting
    materializes runs; `TRANSFER^D` copies its whole input into the DBMS. *)

val next : t -> Tuple.t option

val next_batch : t -> Tuple.t array option
(** The batch pull: a non-empty array of consecutive stream tuples, or
    [None] at exhaustion. *)

val tuple_at_a_time : t -> t
(** Hide the native batch path: the result's [next_batch] is the
    per-tuple shim over [next], so everything below degrades to
    tuple-at-a-time closure calls.  Used by the execution engine's
    [batching=false] mode and the differential tests. *)

val of_relation : Relation.t -> t
(** Cursor over a materialized relation; [init] rewinds.  Native batch
    producer (one array for the whole remainder). *)

val of_relation_lazy : Schema.t -> (unit -> Relation.t) -> t
(** Materializes the thunk at [init] time. *)

val to_relation : t -> Relation.t
(** [init] then drain (batch pulls). *)

val drain : t -> Tuple.t list
(** Drain without [init] (the caller already initialized). *)

val iter : (Tuple.t -> unit) -> t -> unit

val observed : string -> t -> t
(** [observed name c] wraps [c] with per-algorithm observability under
    the [xxl.<name>.*] metric names: opens/tuples/closes counters are
    always live; init/drain timing histograms are recorded only while a
    {!Tango_obs.Trace} is being collected.  Both pull protocols are
    forwarded natively (a batch costs one counter add).  Every middleware
    algorithm constructor applies this to its result. *)
