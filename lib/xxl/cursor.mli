(** The iterator (cursor) framework of the middleware execution engine,
    modeled on the XXL library the paper builds on: every algorithm is a
    result set with [init]/[next] methods, enabling pipelined execution
    (paper Figure 2). *)

open Tango_rel

type t

val make :
  schema:Schema.t -> init:(unit -> unit) -> next:(unit -> Tuple.t option) -> t

val schema : t -> Schema.t

val init : t -> unit
(** Prepare inner structures.  Some algorithms do real work here: sorting
    materializes runs; `TRANSFER^D` copies its whole input into the DBMS. *)

val next : t -> Tuple.t option

val of_relation : Relation.t -> t
(** Cursor over a materialized relation; [init] rewinds. *)

val of_relation_lazy : Schema.t -> (unit -> Relation.t) -> t
(** Materializes the thunk at [init] time. *)

val to_relation : t -> Relation.t
(** [init] then drain. *)

val drain : t -> Tuple.t list
(** Drain without [init] (the caller already initialized). *)

val iter : (Tuple.t -> unit) -> t -> unit

val observed : string -> t -> t
(** [observed name c] wraps [c] with per-algorithm observability under
    the [xxl.<name>.*] metric names: opens/tuples/closes counters are
    always live; init/drain timing histograms are recorded only while a
    {!Tango_obs.Trace} is being collected.  Every middleware algorithm
    constructor applies this to its result. *)
