(* Single point of truth for the input-order requirements and output-order
   guarantees of the order-sensitive middleware algorithms.  The physical
   planner consults these to request properties and to annotate plans; the
   verifier consults the same definitions, so planner and checker cannot
   drift apart. *)

open Tango_rel
open Tango_algebra

let all_attributes (s : Schema.t) : Order.t =
  List.map Order.asc (Schema.names s)

let taggr_input (s : Schema.t) ~group_by : Order.t =
  match Op.period_attrs s with
  | Some (t1, _) -> List.map Order.asc (group_by @ [ t1 ])
  | None -> List.map Order.asc group_by

let taggr_output ~group_by : Order.t = List.map Order.asc (group_by @ [ "T1" ])

let dup_elim_input = all_attributes

let coalesce_input (s : Schema.t) : Order.t =
  let nonperiod =
    List.map (fun (a : Schema.attribute) -> a.Schema.name) (Op.non_period_attrs s)
  in
  match Op.period_attrs s with
  | Some (t1, _) -> List.map Order.asc (nonperiod @ [ t1 ])
  | None -> List.map Order.asc nonperiod

let merge_join_input key : Order.t = [ Order.asc key ]

let merge_join_output ~temporal (out_schema : Schema.t) ~left_key : Order.t =
  let survives =
    if temporal then
      (* A temporal join replaces the arguments' periods with their
         intersection, so an order on an input period attribute does NOT
         survive even though base-name resolution would find the output's
         T1/T2 column.  Only an exact match among the kept non-period
         attributes counts. *)
      List.exists
        (fun (a : Schema.attribute) -> String.equal a.Schema.name left_key)
        (Op.non_period_attrs out_schema)
    else Schema.mem out_schema left_key
  in
  if survives then [ Order.asc left_key ] else []
