(** Tuple- and batch-at-a-time middleware algorithms: `FILTER^M` and
    `PROJECT^M`.

    Both are order-preserving, as the paper requires of middleware
    algorithms (Section 4), and both are native batch producers: one
    input batch yields (at most) one output batch with no per-tuple
    closure calls on the pipeline below. *)

open Tango_rel
open Tango_sql
open Tango_algebra

(* Filter an array through [p], preserving order; [None] when nothing
   survives (so the caller can pull the next input batch). *)
let array_filter p (b : Tuple.t array) : Tuple.t array option =
  let n = Array.length b in
  let kept = ref 0 in
  let keep = Array.make n false in
  for i = 0 to n - 1 do
    if p b.(i) then begin
      keep.(i) <- true;
      incr kept
    end
  done;
  if !kept = 0 then None
  else if !kept = n then Some b
  else begin
    let out = Array.make !kept b.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        out.(!j) <- b.(i);
        incr j
      end
    done;
    Some out
  end

(** `FILTER^M`: selection in the middleware (paper Section 3.3). *)
let filter (pred : Ast.expr) (arg : Cursor.t) : Cursor.t =
  let schema = Cursor.schema arg in
  let p = Scalar.compile_pred schema pred in
  Cursor.observed "filter"
    (Cursor.make_batched ~schema
       ~init:(fun () -> Cursor.init arg)
       ~next_batch:(fun () ->
         let rec go () =
           match Cursor.next_batch arg with
           | None -> None
           | Some b -> (
               match array_filter p b with
               | None -> go ()
               | some -> some)
         in
         go ()))

(** `PROJECT^M`: generalized projection (expressions with output names). *)
let project (items : (Ast.expr * string) list) (arg : Cursor.t) : Cursor.t =
  let in_schema = Cursor.schema arg in
  let out_schema =
    Schema.make
      (List.map (fun (e, n) -> (n, Scalar.dtype in_schema e)) items)
  in
  let fns = Array.of_list (List.map (fun (e, _) -> Scalar.compile in_schema e) items) in
  let eval t = Array.map (fun f -> f t) fns in
  Cursor.observed "project"
    (Cursor.make_batched ~schema:out_schema
       ~init:(fun () -> Cursor.init arg)
       ~next_batch:(fun () ->
         match Cursor.next_batch arg with
         | None -> None
         | Some b -> Some (Array.map eval b)))

(** Projection onto named attributes. *)
let project_attrs names (arg : Cursor.t) : Cursor.t =
  project
    (List.map (fun n -> (Ast.Col (None, n), Schema.base_name n)) names)
    arg
