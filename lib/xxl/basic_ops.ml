(** Tuple-at-a-time middleware algorithms: `FILTER^M` and `PROJECT^M`.

    Both are order-preserving, as the paper requires of middleware
    algorithms (Section 4). *)

open Tango_rel
open Tango_sql
open Tango_algebra

(** `FILTER^M`: selection in the middleware (paper Section 3.3). *)
let filter (pred : Ast.expr) (arg : Cursor.t) : Cursor.t =
  let schema = Cursor.schema arg in
  let p = Scalar.compile_pred schema pred in
  Cursor.observed "filter"
    (Cursor.make ~schema
       ~init:(fun () -> Cursor.init arg)
       ~next:(fun () ->
         let rec go () =
           match Cursor.next arg with
           | None -> None
           | Some t -> if p t then Some t else go ()
         in
         go ()))

(** `PROJECT^M`: generalized projection (expressions with output names). *)
let project (items : (Ast.expr * string) list) (arg : Cursor.t) : Cursor.t =
  let in_schema = Cursor.schema arg in
  let out_schema =
    Schema.make
      (List.map (fun (e, n) -> (n, Scalar.dtype in_schema e)) items)
  in
  let fns = List.map (fun (e, _) -> Scalar.compile in_schema e) items in
  Cursor.observed "project"
    (Cursor.make ~schema:out_schema
       ~init:(fun () -> Cursor.init arg)
       ~next:(fun () ->
         match Cursor.next arg with
         | None -> None
         | Some t -> Some (Array.of_list (List.map (fun f -> f t) fns))))

(** Projection onto named attributes. *)
let project_attrs names (arg : Cursor.t) : Cursor.t =
  project
    (List.map (fun n -> (Ast.Col (None, n), Schema.base_name n)) names)
    arg
