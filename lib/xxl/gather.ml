(** Ordered k-way gather merge over per-shard cursors.  See the
    interface for the ordering contract.

    When shard [names] are given, the time the merge sits blocked on a
    shard's stream — initializing it or refilling its batch buffer — is
    charged to that shard's {!Attribution} lane as {e wait} time, minus
    the transfer time the pull itself recorded underneath (so transfer
    and wait never double-count). *)

open Tango_rel

(* Run [f], charging the blocked time (beyond inner transfer time) to
   [name]'s wait lane. *)
let waited name f =
  match name with
  | None -> f ()
  | Some backend ->
      if not (Attribution.active ()) then f ()
      else begin
        let t0 = Tango_obs.mono_us () in
        let u0 = Attribution.transfer_us ~backend in
        Fun.protect
          ~finally:(fun () ->
            let blocked = Tango_obs.mono_us () -. t0 in
            let inner = Attribution.transfer_us ~backend -. u0 in
            Attribution.wait ~backend ~us:(Float.max 0.0 (blocked -. inner)))
          f
      end

let source_name names i =
  match names with
  | Some ns when i < Array.length ns -> Some ns.(i)
  | _ -> None

(* Drain [sources] one after another (no order to preserve). *)
let concat ?names ~schema (sources : Cursor.t list) : Cursor.t =
  let sources = Array.of_list sources in
  let n = Array.length sources in
  let at = ref 0 in
  Cursor.observed "gather"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         Array.iteri
           (fun i c -> waited (source_name names i) (fun () -> Cursor.init c))
           sources;
         at := 0)
       ~next_batch:(fun () ->
         let rec pull () =
           if !at >= n then None
           else
             let i = !at in
             match
               waited (source_name names i) (fun () ->
                   Cursor.next_batch sources.(i))
             with
             | Some b -> Some b
             | None ->
                 incr at;
                 pull ()
         in
         pull ()))

(* K-way merge: one batch buffer per source, refilled on exhaustion; each
   output batch repeatedly takes the least head (ties to the lowest source
   index, so the merge is deterministic and stable across runs). *)
let kway ?names ~order ~schema (sources : Cursor.t array) : Cursor.t =
  let n = Array.length sources in
  let cmp = Order.comparator order schema in
  let bufs = Array.make n [||] in
  let pos = Array.make n 0 in
  let done_ = Array.make n false in
  let refill i =
    if (not done_.(i)) && pos.(i) >= Array.length bufs.(i) then
      match
        waited (source_name names i) (fun () -> Cursor.next_batch sources.(i))
      with
      | Some b ->
          bufs.(i) <- b;
          pos.(i) <- 0
      | None -> done_.(i) <- true
  in
  let head i =
    refill i;
    if done_.(i) then None else Some bufs.(i).(pos.(i))
  in
  let next_tuple () =
    let best = ref None in
    for i = n - 1 downto 0 do
      match head i with
      | None -> ()
      | Some t -> (
          (* scanning high→low index: on ties the lower source wins *)
          match !best with
          | Some (_, bt) when cmp bt t < 0 -> ()
          | _ -> best := Some (i, t))
    done;
    match !best with
    | None -> None
    | Some (i, t) ->
        pos.(i) <- pos.(i) + 1;
        Some t
  in
  Cursor.observed "gather"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         Array.iteri
           (fun i c -> waited (source_name names i) (fun () -> Cursor.init c))
           sources;
         Array.fill bufs 0 n [||];
         Array.fill pos 0 n 0;
         Array.fill done_ 0 n false)
       ~next_batch:(fun () ->
         match next_tuple () with
         | None -> None
         | Some first ->
             let out = ref [ first ] in
             let count = ref 1 in
             let continue = ref true in
             while !continue && !count < Cursor.default_batch_size do
               match next_tuple () with
               | None -> continue := false
               | Some t ->
                   out := t :: !out;
                   incr count
             done;
             Some (Array.of_list (List.rev !out))))

let merge ?(order = []) ?names ~schema (sources : Cursor.t list) : Cursor.t =
  let names = Option.map Array.of_list names in
  match sources with
  | [] ->
      Cursor.make ~schema ~init:(fun () -> ()) ~next:(fun () -> None)
  | [ c ] -> c
  | _ ->
      if order = [] then concat ?names ~schema sources
      else kway ?names ~order ~schema (Array.of_list sources)
