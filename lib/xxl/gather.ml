(** Ordered k-way gather merge over per-shard cursors.  See the
    interface for the ordering contract. *)

open Tango_rel

(* Drain [sources] one after another (no order to preserve). *)
let concat ~schema (sources : Cursor.t list) : Cursor.t =
  let remaining = ref sources in
  Cursor.observed "gather"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         List.iter Cursor.init sources;
         remaining := sources)
       ~next_batch:(fun () ->
         let rec pull () =
           match !remaining with
           | [] -> None
           | c :: rest -> (
               match Cursor.next_batch c with
               | Some b -> Some b
               | None ->
                   remaining := rest;
                   pull ())
         in
         pull ()))

(* K-way merge: one batch buffer per source, refilled on exhaustion; each
   output batch repeatedly takes the least head (ties to the lowest source
   index, so the merge is deterministic and stable across runs). *)
let kway ~order ~schema (sources : Cursor.t array) : Cursor.t =
  let n = Array.length sources in
  let cmp = Order.comparator order schema in
  let bufs = Array.make n [||] in
  let pos = Array.make n 0 in
  let done_ = Array.make n false in
  let refill i =
    if (not done_.(i)) && pos.(i) >= Array.length bufs.(i) then
      match Cursor.next_batch sources.(i) with
      | Some b ->
          bufs.(i) <- b;
          pos.(i) <- 0
      | None -> done_.(i) <- true
  in
  let head i =
    refill i;
    if done_.(i) then None else Some bufs.(i).(pos.(i))
  in
  let next_tuple () =
    let best = ref None in
    for i = n - 1 downto 0 do
      match head i with
      | None -> ()
      | Some t -> (
          (* scanning high→low index: on ties the lower source wins *)
          match !best with
          | Some (_, bt) when cmp bt t < 0 -> ()
          | _ -> best := Some (i, t))
    done;
    match !best with
    | None -> None
    | Some (i, t) ->
        pos.(i) <- pos.(i) + 1;
        Some t
  in
  Cursor.observed "gather"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         Array.iter Cursor.init sources;
         Array.fill bufs 0 n [||];
         Array.fill pos 0 n 0;
         Array.fill done_ 0 n false)
       ~next_batch:(fun () ->
         match next_tuple () with
         | None -> None
         | Some first ->
             let out = ref [ first ] in
             let count = ref 1 in
             let continue = ref true in
             while !continue && !count < Cursor.default_batch_size do
               match next_tuple () with
               | None -> continue := false
               | Some t ->
                   out := t :: !out;
                   incr count
             done;
             Some (Array.of_list (List.rev !out))))

let merge ?(order = []) ~schema (sources : Cursor.t list) : Cursor.t =
  match sources with
  | [] ->
      Cursor.make ~schema ~init:(fun () -> ()) ~next:(fun () -> None)
  | [ c ] -> c
  | _ ->
      if order = [] then concat ~schema sources
      else kway ~order ~schema (Array.of_list sources)
