(** `TAGGR^M`: the middleware temporal-aggregation algorithm.

    Requires its argument sorted on the grouping attributes and [T1] (paper
    Section 3.4).  A second copy of each group is sorted internally on [T2];
    the two orderings are then swept like a sort-merge, adding a tuple's
    contribution when its period starts and removing it when it ends, so
    each constant interval is produced in one pass with O(log n) work per
    event.  The output is ordered on (grouping attributes, T1) — the
    algorithm "preserves order on the grouping attributes" (paper Query 1),
    which lets the optimizer drop a final sort. *)

open Tango_rel
open Tango_algebra

let taggr ~(group_by : string list) ~(aggs : Op.agg list) (arg : Cursor.t) :
    Cursor.t =
  let s = Cursor.schema arg in
  let t1_name, t2_name =
    match Op.period_attrs s with
    | Some p -> p
    | None -> Op.ill_formed "TAGGR argument must be temporal"
  in
  let t1_idx = Schema.index s t1_name and t2_idx = Schema.index s t2_name in
  let group_idxs = List.map (Schema.index s) group_by in
  let agg_arg_idx (a : Op.agg) =
    Option.map (Schema.index s) a.Op.arg
  in
  let agg_specs =
    List.map
      (fun (a : Op.agg) ->
        let idx = agg_arg_idx a in
        let arg_dtype = Option.map (Schema.dtype_at s) idx in
        (a, idx, arg_dtype))
      aggs
  in
  let out_schema =
    Schema.make
      (List.map (fun g -> (g, Schema.dtype_of s g)) group_by
      @ [ ("T1", Value.TDate); ("T2", Value.TDate) ]
      @ List.map
          (fun (a : Op.agg) -> (a.Op.out, Op.agg_out_dtype s a))
          aggs)
  in
  let look = ref None in
  let group_key t = List.map (fun i -> t.(i)) group_idxs in
  let key_eq k1 k2 = List.for_all2 Value.equal k1 k2 in
  (* Read all tuples of the next group (argument is sorted on G). *)
  let read_group () =
    match !look with
    | None -> None
    | Some first ->
        let k = group_key first in
        let members = ref [ first ] in
        look := Cursor.next arg;
        let rec go () =
          match !look with
          | Some t when key_eq (group_key t) k ->
              members := t :: !members;
              look := Cursor.next arg;
              go ()
          | _ -> ()
        in
        go ();
        Some (k, Array.of_list (List.rev !members))
  in
  (* Sweep one group: produce its output tuples in (T1) order. *)
  let process_group key (members : Tuple.t array) : Tuple.t list =
    let n = Array.length members in
    (* First copy: already sorted on T1 (argument order).  Second copy:
       sorted internally on T2 — the algorithm's "second sorting". *)
    let ends = Array.copy members in
    Array.sort (fun a b -> Value.compare a.(t2_idx) b.(t2_idx)) ends;
    let states =
      List.map
        (fun (a, idx, arg_dtype) ->
          (Agg_state.create a.Op.fn ~arg_dtype, idx))
        agg_specs
    in
    let value_of t = function Some i -> t.(i) | None -> Value.Null in
    let active = ref 0 in
    let out = ref [] in
    let i = ref 0 (* next start event *) and j = ref 0 (* next end event *) in
    let prev = ref 0 in
    let started = ref false in
    while !j < n do
      let next_point =
        if !i < n then
          min (Value.to_int members.(!i).(t1_idx)) (Value.to_int ends.(!j).(t2_idx))
        else Value.to_int ends.(!j).(t2_idx)
      in
      if !started && !active > 0 && !prev < next_point then begin
        let tuple =
          Array.of_list
            (key
            @ [ Value.Date !prev; Value.Date next_point ]
            @ List.map (fun (st, _) -> Agg_state.value st) states)
        in
        out := tuple :: !out
      end;
      (* Add tuples starting at this point... *)
      while !i < n && Value.to_int members.(!i).(t1_idx) = next_point do
        List.iter
          (fun (st, idx) -> Agg_state.add st (value_of members.(!i) idx))
          states;
        incr active;
        incr i
      done;
      (* ...and retire tuples ending here. *)
      while !j < n && Value.to_int ends.(!j).(t2_idx) = next_point do
        List.iter
          (fun (st, idx) -> Agg_state.remove st (value_of ends.(!j) idx))
          states;
        decr active;
        incr j
      done;
      prev := next_point;
      started := true
    done;
    List.rev !out
  in
  (* Each input group yields one output batch (its constant intervals);
     groups whose sweep produces nothing are skipped. *)
  Cursor.observed "taggr"
    (Cursor.make_batched ~schema:out_schema
       ~init:(fun () ->
         Cursor.init arg;
         look := Cursor.next arg)
       ~next_batch:(fun () ->
         let rec go () =
           match read_group () with
           | None -> None
           | Some (key, members) -> (
               match process_group key members with
               | [] -> go ()
               | out -> Some (Array.of_list out))
         in
         go ()))
