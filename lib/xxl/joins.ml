(** Middleware join algorithms: `MERGEJOIN^M` (regular join) and `TJOIN^M`
    (temporal join), both sort-merge over inputs sorted on the join
    attributes, as the paper implements them (Section 4.1, rules T2/T3).
    Nested-loop fallbacks are provided for joins without an equi-key.

    The temporal join concatenates the non-period attributes of both inputs
    and appends the period intersection as unqualified [T1]/[T2], matching
    {!Tango_algebra.Op.Temporal_join}'s schema. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_temporal

type side_state = {
  cursor : Cursor.t;
  key : Tuple.t -> Tuple.t;  (* extract join key *)
  mutable look : Tuple.t option;  (* one-tuple lookahead *)
}

let make_side cursor key_idxs =
  {
    cursor;
    key = (fun t -> Array.of_list (List.map (fun i -> t.(i)) key_idxs));
    look = None;
  }

let side_init s =
  Cursor.init s.cursor;
  s.look <- Cursor.next s.cursor

let side_peek s = s.look
let side_advance s = s.look <- Cursor.next s.cursor

(* Read the full run of tuples whose key equals the current lookahead's. *)
let side_read_group s =
  match s.look with
  | None -> None
  | Some first ->
      let k = s.key first in
      let group = ref [ first ] in
      side_advance s;
      let rec go () =
        match s.look with
        | Some t when Tuple.compare (s.key t) k = 0 ->
            group := t :: !group;
            side_advance s;
            go ()
        | _ -> ()
      in
      go ();
      Some (k, List.rev !group)

let key_indexes schema attrs = List.map (Schema.index schema) attrs

(* Shared sort-merge skeleton: [emit lt rt] produces an output tuple option
   for a key-matched pair.  Native batch producer: each left tuple whose key
   matches a buffered right group yields its surviving pairs as one batch. *)
let merge_skeleton ~schema ~left ~right ~left_keys ~right_keys ~emit :
    Cursor.t =
  let ls = make_side left (key_indexes (Cursor.schema left) left_keys) in
  let rs = make_side right (key_indexes (Cursor.schema right) right_keys) in
  let right_group : (Tuple.t * Tuple.t list) option ref = ref None in
  let rec fill () =
    match side_peek ls with
    | None -> None
    | Some lt -> (
        let lk = ls.key lt in
        (* Drop right groups/tuples with keys before the left key, then
           buffer the next right group (whose key is >= lk). *)
        let rec catch_up () =
          match !right_group with
          | Some (gk, _) when Tuple.compare gk lk >= 0 -> ()
          | _ -> (
              match side_peek rs with
              | Some rt when Tuple.compare (rs.key rt) lk < 0 ->
                  side_advance rs;
                  catch_up ()
              | Some _ ->
                  right_group := side_read_group rs;
                  catch_up ()
              | None -> right_group := None)
        in
        catch_up ();
        match !right_group with
        | Some (gk, group) when Tuple.compare gk lk = 0 -> (
            side_advance ls;
            match List.filter_map (fun rt -> emit lt rt) group with
            | [] -> fill ()
            | out -> Some (Array.of_list out))
        | _ ->
            side_advance ls;
            fill ())
  in
  Cursor.make_batched ~schema
    ~init:(fun () ->
      side_init ls;
      side_init rs;
      right_group := None)
    ~next_batch:fill

(** `MERGEJOIN^M`: equi-join of inputs sorted on [left_keys]/[right_keys];
    [pred] is an optional residual predicate over the concatenated schema.
    Output order: left join keys (runs of the left input's order). *)
let merge_join ?(pred = Ast.Lit (Tango_rel.Value.Bool true)) ~left_keys
    ~right_keys left right : Cursor.t =
  let out_schema = Schema.concat (Cursor.schema left) (Cursor.schema right) in
  let p = Scalar.compile_pred out_schema pred in
  Cursor.observed "merge_join"
    (merge_skeleton ~schema:out_schema ~left ~right ~left_keys ~right_keys
       ~emit:(fun lt rt ->
         let t = Tuple.concat lt rt in
         if p t then Some t else None))

(* Build the temporal-join output machinery shared by both variants. *)
let tjoin_emit ~sl ~sr ~pred =
  let concat_schema = Schema.concat sl sr in
  let p = Scalar.compile_pred concat_schema pred in
  let out_schema =
    let keep s =
      List.map
        (fun (a : Schema.attribute) -> (a.name, a.dtype))
        (Op.non_period_attrs s)
    in
    Schema.make
      (keep sl @ keep sr
      @ [ ("T1", Tango_rel.Value.TDate); ("T2", Tango_rel.Value.TDate) ])
  in
  let period_idx s =
    match Op.period_attrs s with
    | Some (a1, a2) -> (Schema.index s a1, Schema.index s a2)
    | None -> Op.ill_formed "temporal join argument must be temporal"
  in
  let l1, l2 = period_idx sl and r1, r2 = period_idx sr in
  let keep_idx s =
    List.map
      (fun (a : Schema.attribute) -> Schema.index s a.name)
      (Op.non_period_attrs s)
  in
  let kl = keep_idx sl and kr = keep_idx sr in
  let emit lt rt =
    let a1 = Chronon.of_value lt.(l1)
    and a2 = Chronon.of_value lt.(l2)
    and b1 = Chronon.of_value rt.(r1)
    and b2 = Chronon.of_value rt.(r2) in
    let t1 = max a1 b1 and t2 = min a2 b2 in
    if t1 < t2 && p (Tuple.concat lt rt) then begin
      let vals =
        List.map (fun i -> lt.(i)) kl
        @ List.map (fun i -> rt.(i)) kr
        @ [ Tango_rel.Value.Date t1; Tango_rel.Value.Date t2 ]
      in
      Some (Tuple.of_list vals)
    end
    else None
  in
  (out_schema, emit)

(** `TJOIN^M`: temporal equi-join (overlap implicit) of inputs sorted on the
    join keys. *)
let temporal_merge_join ?(pred = Ast.Lit (Tango_rel.Value.Bool true))
    ~left_keys ~right_keys left right : Cursor.t =
  let sl = Cursor.schema left and sr = Cursor.schema right in
  let out_schema, emit = tjoin_emit ~sl ~sr ~pred in
  Cursor.observed "tjoin"
    (merge_skeleton ~schema:out_schema ~left ~right ~left_keys ~right_keys
       ~emit)

(** Nested-loop join (no order requirement); for completeness and testing. *)
let nested_loop_join ?(pred = Ast.Lit (Tango_rel.Value.Bool true)) left right :
    Cursor.t =
  let out_schema = Schema.concat (Cursor.schema left) (Cursor.schema right) in
  let p = Scalar.compile_pred out_schema pred in
  let right_rel = ref [||] in
  let li = ref None in
  let ri = ref 0 in
  Cursor.observed "nl_join"
    (Cursor.make ~schema:out_schema
       ~init:(fun () ->
         Cursor.init left;
         right_rel := Relation.tuples (Cursor.to_relation right);
         li := Cursor.next left;
         ri := 0)
       ~next:(fun () ->
         let rec go () =
           match !li with
           | None -> None
           | Some lt ->
               if !ri >= Array.length !right_rel then begin
                 li := Cursor.next left;
                 ri := 0;
                 go ()
               end
               else begin
                 let rt = !right_rel.(!ri) in
                 incr ri;
                 let t = Tuple.concat lt rt in
                 if p t then Some t else go ()
               end
         in
         go ()))

(** Nested-loop temporal join (no order requirement). *)
let temporal_nested_loop_join ?(pred = Ast.Lit (Tango_rel.Value.Bool true))
    left right : Cursor.t =
  let sl = Cursor.schema left and sr = Cursor.schema right in
  let out_schema, emit = tjoin_emit ~sl ~sr ~pred in
  let right_rel = ref [||] in
  let li = ref None in
  let ri = ref 0 in
  Cursor.observed "tnl_join"
    (Cursor.make ~schema:out_schema
       ~init:(fun () ->
         Cursor.init left;
         right_rel := Relation.tuples (Cursor.to_relation right);
         li := Cursor.next left;
         ri := 0)
       ~next:(fun () ->
         let rec go () =
           match !li with
           | None -> None
           | Some lt ->
               if !ri >= Array.length !right_rel then begin
                 li := Cursor.next left;
                 ri := 0;
                 go ()
               end
               else begin
                 let rt = !right_rel.(!ri) in
                 incr ri;
                 match emit lt rt with Some t -> Some t | None -> go ()
               end
         in
         go ()))
