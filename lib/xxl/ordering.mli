(** Declared ordering properties of the order-sensitive middleware
    algorithms (paper §3.1): the input order each algorithm {e requires}
    and the output order it {e guarantees}, stated once so the physical
    planner ({!Tango_volcano.Physical}), the transformation rules and the
    plan verifier all agree.

    - {!Taggr} needs its input sorted on (G₁..Gₙ, T1) and emits
      (G₁..Gₙ, T1) order ({!taggr_input} / {!taggr_output});
    - {!Dup_elim} needs its input sorted on all attributes
      ({!dup_elim_input}) and preserves that order;
    - coalescing ({!Temporal.coalesce}) needs (non-period attrs, T1)
      ({!coalesce_input}) and preserves it;
    - sort-merge (temporal) join needs each input sorted on its join
      attribute ({!merge_join_input}) and emits the left attribute's order
      when it survives into the output ({!merge_join_output}). *)

open Tango_rel

val all_attributes : Schema.t -> Order.t
(** Ascending order on every attribute, in schema order. *)

val taggr_input : Schema.t -> group_by:string list -> Order.t
(** The (G₁..Gₙ, T1) order TAGGR^M requires of its argument (T1 resolved
    against the argument schema's period attributes). *)

val taggr_output : group_by:string list -> Order.t
(** The (G₁..Gₙ, T1) order temporal aggregation produces (output-schema
    attribute names). *)

val dup_elim_input : Schema.t -> Order.t
(** DUPELIM^M requires its input sorted on all attributes. *)

val coalesce_input : Schema.t -> Order.t
(** COALESCE^M requires (non-period attributes, T1) order. *)

val merge_join_input : string -> Order.t
(** Each merge-join input must be sorted ascending on its join attribute. *)

val merge_join_output :
  temporal:bool -> Schema.t -> left_key:string -> Order.t
(** The order a sort-merge (temporal) join guarantees: ascending on the
    left join attribute when it survives into [out_schema].  For temporal
    joins an input {e period} attribute never survives — the output period
    is the intersection — so only kept non-period attributes qualify. *)
