(** The transfer algorithms, `TRANSFER^M` and `TRANSFER^D` (paper §3.2),
    over the {!Tango_dbms.Backend} abstraction.

    `TRANSFER^M` issues a SELECT to one backend and streams the result
    into the middleware (paying marshalling and round-trip costs).
    `TRANSFER^D` bulk-loads its whole argument into a uniquely-named table
    at [init] time — the direct-path-load analogue; its cursor yields
    nothing, the data being consumed by SQL referencing the created table
    (the dashed sequence edges of paper Figure 5).  Under a sharded
    topology the table is replicated to every backend
    ({!transfer_d_all}). *)

open Tango_rel
open Tango_sql
open Tango_dbms

val transfer_m : Backend.t -> schema:Schema.t -> Ast.query -> Cursor.t
(** [schema] is the expected output schema (from the algebra); the SQL's
    column order must match positionally. *)

val transfer_d : Backend.t -> table:string -> Cursor.t -> Cursor.t

val transfer_d_all : Backend.t list -> table:string -> Cursor.t -> Cursor.t
(** Replicate the argument into [table] on every listed backend (one
    drain of the argument, one bulk load per backend). *)

val drop_temp_table : Backend.t -> string -> unit
(** Drop a temp table if it exists ("the table must be dropped at the end
    of the query"). *)
