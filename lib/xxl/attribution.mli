(** Per-query, per-backend latency attribution.

    An ambient collector (installed around one plan execution, like
    {!Tango_obs.Trace}) that the transfer and gather layers feed:

    - {e transfer time} ([us]): wall time spent inside backend boundary
      calls — issuing the statement, fetching batches, bulk-loading
      [TRANSFER^D] temps — together with the rows and bytes that crossed;
    - {e gather wait time} ([wait_us]): wall time the gather merge sat
      blocked on a shard's stream {e beyond} the raw transfer time
      recorded underneath during that same blocked interval, so the two
      never double-count and their sum is the shard's total contribution.

    When no collector is installed every hook is a cheap no-op, so the
    execution hot path pays a single branch. *)

type breakdown = {
  rows : int;  (** tuples that crossed the boundary (both directions) *)
  bytes : int;  (** bytes that crossed the boundary *)
  us : float;  (** transfer time: time inside backend calls *)
  wait_us : float;
      (** gather-merge blocked time on this shard beyond [us] *)
  alloc_bytes : int;
      (** bytes allocated on the pulling domain inside the boundary
          calls ({!Tango_obs.Runtime} delta) *)
}

type t

val create : unit -> t

val with_collector : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient collector for the duration of [f]
    (restoring the previous one afterwards, so nested executions each
    keep their own ledger). *)

val active : unit -> bool
(** Is a collector installed?  Lets callers skip byte-size accounting
    when nobody is listening. *)

val transfer :
  backend:string -> rows:int -> bytes:int -> us:float -> alloc_bytes:int -> unit
(** Record boundary work against [backend]'s lane; no-op without a
    collector. *)

val wait : backend:string -> us:float -> unit
(** Record gather-merge blocked time against [backend]'s lane; no-op
    without a collector. *)

val transfer_us : backend:string -> float
(** The transfer time accumulated so far for [backend] (0 without a
    collector) — snapshot around a blocking pull to subtract the inner
    transfer time from the measured wait. *)

val breakdown : t -> (string * breakdown) list
(** Per-backend totals, in first-seen order. *)

val totals : (string * breakdown) list -> breakdown
(** Elementwise sum of a breakdown list. *)
