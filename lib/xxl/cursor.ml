(** The iterator (cursor) framework of the middleware execution engine.

    Modeled on the XXL library the paper builds on: every algorithm is a
    result set with [init]/[next] methods, enabling pipelined execution
    (paper Figure 2).  [init] prepares inner structures — and for some
    algorithms does real work up front (sorting materializes runs; the
    `TRANSFER^D` algorithm copies its whole input into the DBMS). *)

open Tango_rel

type t = {
  schema : Schema.t;
  init : unit -> unit;
  next : unit -> Tuple.t option;
}

let make ~schema ~init ~next = { schema; init; next }

let schema c = c.schema
let init c = c.init ()
let next c = c.next ()

(** Cursor over a materialized relation. *)
let of_relation (r : Relation.t) : t =
  let pos = ref 0 in
  {
    schema = Relation.schema r;
    init = (fun () -> pos := 0);
    next =
      (fun () ->
        let ts = Relation.tuples r in
        if !pos >= Array.length ts then None
        else begin
          let t = ts.(!pos) in
          incr pos;
          Some t
        end);
  }

(** Cursor over a thunked relation, materialized at [init] time. *)
let of_relation_lazy schema (produce : unit -> Relation.t) : t =
  let state = ref None in
  let pos = ref 0 in
  {
    schema;
    init =
      (fun () ->
        state := Some (produce ());
        pos := 0);
    next =
      (fun () ->
        match !state with
        | None -> invalid_arg "Cursor: next before init"
        | Some r ->
            let ts = Relation.tuples r in
            if !pos >= Array.length ts then None
            else begin
              let t = ts.(!pos) in
              incr pos;
              Some t
            end);
  }

(** [init] then drain into a relation. *)
let to_relation (c : t) : Relation.t =
  c.init ();
  let rec go acc =
    match c.next () with None -> List.rev acc | Some t -> go (t :: acc)
  in
  Relation.of_list c.schema (go [])

(** Drain without init (when the caller already initialized). *)
let drain (c : t) : Tuple.t list =
  let rec go acc =
    match c.next () with None -> List.rev acc | Some t -> go (t :: acc)
  in
  go []

let iter f (c : t) =
  c.init ();
  let rec go () =
    match c.next () with
    | None -> ()
    | Some t ->
        f t;
        go ()
  in
  go ()

(** Wrap a cursor with per-algorithm observability (see {!Tango_obs}).

    Counters [xxl.<name>.opens] / [.tuples] / [.closes] are always live
    (a close is the first exhausted [next]).  When a trace is being
    collected, [init] time and the summed [next] time until exhaustion
    are additionally recorded in the [xxl.<name>.init_us] / [.drain_us] /
    [.tuples_per_open] histograms; with tracing off, the only per-tuple
    overhead is one branch and one counter increment. *)
let observed (name : string) (c : t) : t =
  let pre = "xxl." ^ name in
  let c_opens = Tango_obs.Counter.make (pre ^ ".opens") in
  let c_tuples = Tango_obs.Counter.make (pre ^ ".tuples") in
  let c_closes = Tango_obs.Counter.make (pre ^ ".closes") in
  let h_init = Tango_obs.Histogram.make (pre ^ ".init_us") in
  let h_drain = Tango_obs.Histogram.make (pre ^ ".drain_us") in
  let h_out = Tango_obs.Histogram.make (pre ^ ".tuples_per_open") in
  let produced = ref 0 in
  let spent = ref 0.0 in
  let exhausted = ref false in
  {
    schema = c.schema;
    init =
      (fun () ->
        Tango_obs.Counter.incr c_opens;
        produced := 0;
        spent := 0.0;
        exhausted := false;
        if Tango_obs.Trace.active () then begin
          let t0 = Tango_obs.now_us () in
          c.init ();
          Tango_obs.Histogram.observe h_init (Tango_obs.now_us () -. t0)
        end
        else c.init ());
    next =
      (fun () ->
        if Tango_obs.Trace.active () then begin
          let t0 = Tango_obs.now_us () in
          let r = c.next () in
          spent := !spent +. (Tango_obs.now_us () -. t0);
          (match r with
          | Some _ ->
              incr produced;
              Tango_obs.Counter.incr c_tuples
          | None ->
              if not !exhausted then begin
                exhausted := true;
                Tango_obs.Counter.incr c_closes;
                Tango_obs.Histogram.observe h_drain !spent;
                Tango_obs.Histogram.observe h_out (float_of_int !produced)
              end);
          r
        end
        else begin
          let r = c.next () in
          (match r with
          | Some _ -> Tango_obs.Counter.incr c_tuples
          | None ->
              if not !exhausted then begin
                exhausted := true;
                Tango_obs.Counter.incr c_closes
              end);
          r
        end);
  }
