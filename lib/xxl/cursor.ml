(** The iterator (cursor) framework of the middleware execution engine.

    Modeled on the XXL library the paper builds on: every algorithm is a
    result set with [init]/[next] methods, enabling pipelined execution
    (paper Figure 2).  [init] prepares inner structures — and for some
    algorithms does real work up front (sorting materializes runs; the
    `TRANSFER^D` algorithm copies its whole input into the DBMS).

    On top of the classic tuple-at-a-time protocol every cursor also
    carries a {e batch} pull, [next_batch], returning an array of tuples
    per call.  Batches are a pure amortization of the per-tuple closure
    chain: the tuple stream delivered through [next_batch] is exactly the
    stream [next] would deliver, in the same order, and the two entry
    points may be interleaved freely.  A batch is never empty; [None]
    marks exhaustion, exactly like [next]. *)

open Tango_rel

type t = {
  schema : Schema.t;
  init : unit -> unit;
  next : unit -> Tuple.t option;
  next_batch : unit -> Tuple.t array option;
}

(** Tuples per batch produced by the default shim (and a reasonable size
    for native producers that must pick one). *)
let default_batch_size = 256

(* Shim: assemble a batch by looping the tuple-at-a-time entry point.
   Used for cursors defined only via [next]. *)
let batch_of_next (next : unit -> Tuple.t option) () :
    Tuple.t array option =
  match next () with
  | None -> None
  | Some first ->
      let buf = ref [ first ] in
      let n = ref 1 in
      (try
         while !n < default_batch_size do
           match next () with
           | None -> raise Exit
           | Some t ->
               buf := t :: !buf;
               incr n
         done
       with Exit -> ());
      Some (Array.of_list (List.rev !buf))

let make ~schema ~init ~next =
  { schema; init; next; next_batch = batch_of_next next }

(** For wrappers around an existing cursor: supply both protocols so each
    forwards to the wrapped cursor's native implementation. *)
let make_full ~schema ~init ~next ~next_batch = { schema; init; next; next_batch }

(** Build a cursor from a native batch producer; the tuple-at-a-time
    [next] is derived by serving tuples out of an internal buffer, so
    per-tuple pulls cost an array index, not a closure chain.  The
    producer must never return an empty array (empty batches are skipped
    defensively, but producing them wastes work). *)
let make_batched ~schema ~init ~(next_batch : unit -> Tuple.t array option) =
  let buf = ref [||] in
  let pos = ref 0 in
  (* Pull the next non-empty batch from the producer. *)
  let rec pull () =
    match next_batch () with
    | None -> None
    | Some b when Array.length b = 0 -> pull ()
    | some -> some
  in
  let rec next () =
    if !pos < Array.length !buf then begin
      let t = (!buf).(!pos) in
      incr pos;
      Some t
    end
    else
      match pull () with
      | None -> None
      | Some b ->
          buf := b;
          pos := 0;
          next ()
  in
  let next_batch' () =
    if !pos < Array.length !buf then begin
      (* serve the buffered remainder first so interleaving [next] and
         [next_batch] preserves the stream *)
      let rest = Array.sub !buf !pos (Array.length !buf - !pos) in
      buf := [||];
      pos := 0;
      Some rest
    end
    else pull ()
  in
  let init' () =
    buf := [||];
    pos := 0;
    init ()
  in
  { schema; init = init'; next; next_batch = next_batch' }

let schema c = c.schema
let init c = c.init ()
let next c = c.next ()
let next_batch c = c.next_batch ()

(** Hide the native batch path: the result answers [next_batch] through
    the per-tuple shim, so every pull below this point degrades to
    tuple-at-a-time closure calls.  Used to measure (and differentially
    test) batch-at-a-time against the classic protocol. *)
let tuple_at_a_time (c : t) : t =
  { schema = c.schema; init = c.init; next = c.next;
    next_batch = batch_of_next c.next }

(** Cursor over a materialized relation; the native batch path hands out
    the remaining tuples in one array. *)
let of_relation (r : Relation.t) : t =
  let ts = Relation.tuples r in
  let pos = ref 0 in
  make_batched ~schema:(Relation.schema r)
    ~init:(fun () -> pos := 0)
    ~next_batch:(fun () ->
      let len = Array.length ts in
      if !pos >= len then None
      else begin
        let b = Array.sub ts !pos (len - !pos) in
        pos := len;
        Some b
      end)

(** Cursor over a thunked relation, materialized at [init] time. *)
let of_relation_lazy schema (produce : unit -> Relation.t) : t =
  let state = ref None in
  let pos = ref 0 in
  make_batched ~schema
    ~init:(fun () ->
      state := Some (produce ());
      pos := 0)
    ~next_batch:(fun () ->
      match !state with
      | None -> invalid_arg "Cursor: next before init"
      | Some r ->
          let ts = Relation.tuples r in
          let len = Array.length ts in
          if !pos >= len then None
          else begin
            let b = Array.sub ts !pos (len - !pos) in
            pos := len;
            Some b
          end)

(* Drain every remaining batch, in order. *)
let drain_batches (c : t) : Tuple.t array list =
  let rec go acc =
    match c.next_batch () with None -> List.rev acc | Some b -> go (b :: acc)
  in
  go []

(** [init] then drain into a relation (batch pulls). *)
let to_relation (c : t) : Relation.t =
  c.init ();
  Relation.make c.schema (Array.concat (drain_batches c))

(** Drain without init (when the caller already initialized). *)
let drain (c : t) : Tuple.t list =
  List.concat_map Array.to_list (drain_batches c)

let iter f (c : t) =
  c.init ();
  let rec go () =
    match c.next_batch () with
    | None -> ()
    | Some b ->
        Array.iter f b;
        go ()
  in
  go ()

(** Wrap a cursor with per-algorithm observability (see {!Tango_obs}).

    Counters [xxl.<name>.opens] / [.tuples] / [.closes] are always live
    (a close is the first exhausted [next]).  When a trace is being
    collected, [init] time and the summed [next] time until exhaustion
    are additionally recorded in the [xxl.<name>.init_us] / [.drain_us] /
    [.tuples_per_open] histograms; with tracing off, the only per-tuple
    overhead is one branch and one counter increment (one per {e batch}
    on the batch path). *)
let observed (name : string) (c : t) : t =
  let pre = "xxl." ^ name in
  let c_opens = Tango_obs.Counter.make (pre ^ ".opens") in
  let c_tuples = Tango_obs.Counter.make (pre ^ ".tuples") in
  let c_closes = Tango_obs.Counter.make (pre ^ ".closes") in
  let h_init = Tango_obs.Histogram.make (pre ^ ".init_us") in
  let h_drain = Tango_obs.Histogram.make (pre ^ ".drain_us") in
  let h_out = Tango_obs.Histogram.make (pre ^ ".tuples_per_open") in
  let produced = ref 0 in
  let spent = ref 0.0 in
  let exhausted = ref false in
  let on_close () =
    if not !exhausted then begin
      exhausted := true;
      Tango_obs.Counter.incr c_closes
    end
  in
  let on_close_traced () =
    if not !exhausted then begin
      exhausted := true;
      Tango_obs.Counter.incr c_closes;
      Tango_obs.Histogram.observe h_drain !spent;
      Tango_obs.Histogram.observe h_out (float_of_int !produced)
    end
  in
  {
    schema = c.schema;
    init =
      (fun () ->
        Tango_obs.Counter.incr c_opens;
        produced := 0;
        spent := 0.0;
        exhausted := false;
        if Tango_obs.Trace.active () then begin
          let t0 = Tango_obs.mono_us () in
          c.init ();
          Tango_obs.Histogram.observe h_init (Tango_obs.mono_us () -. t0)
        end
        else c.init ());
    next =
      (fun () ->
        if Tango_obs.Trace.active () then begin
          let t0 = Tango_obs.mono_us () in
          let r = c.next () in
          spent := !spent +. (Tango_obs.mono_us () -. t0);
          (match r with
          | Some _ ->
              incr produced;
              Tango_obs.Counter.incr c_tuples
          | None -> on_close_traced ());
          r
        end
        else begin
          let r = c.next () in
          (match r with
          | Some _ -> Tango_obs.Counter.incr c_tuples
          | None -> on_close ());
          r
        end);
    next_batch =
      (fun () ->
        if Tango_obs.Trace.active () then begin
          let t0 = Tango_obs.mono_us () in
          let r = c.next_batch () in
          spent := !spent +. (Tango_obs.mono_us () -. t0);
          (match r with
          | Some b ->
              produced := !produced + Array.length b;
              Tango_obs.Counter.add c_tuples (Array.length b)
          | None -> on_close_traced ());
          r
        end
        else begin
          let r = c.next_batch () in
          (match r with
          | Some b -> Tango_obs.Counter.add c_tuples (Array.length b)
          | None -> on_close ());
          r
        end);
  }
