(** The gather half of scatter/gather: combine per-shard cursors into one
    stream.

    With an [order], the sources must each be sorted on it (each shard runs
    the same DBMS subtree, so per-shard streams share the subtree's output
    order) and the result is their ordered k-way merge — the
    {!Ordering}-style guarantee a downstream temporal merge join relies
    on.  Ties break by source position, so the merge is deterministic.
    Without an order, sources are simply drained in sequence. *)

open Tango_rel

val merge :
  ?order:Order.t ->
  ?names:string list ->
  schema:Schema.t ->
  Cursor.t list ->
  Cursor.t
(** [merge ~order ~schema sources].  An empty source list yields the empty
    stream; a singleton is returned as-is (no wrapping cost).

    [names] gives the backend name behind each source (parallel lists):
    when present, the time the merge sits blocked pulling from source [k]
    — beyond the transfer time that pull itself records — is charged to
    [names[k]]'s {!Attribution} wait lane, making shard skew directly
    measurable. *)
