(** The transfer algorithms, `TRANSFER^M` and `TRANSFER^D` (paper
    Section 3.2), over the {!Tango_dbms.Backend} abstraction.

    `TRANSFER^M` issues a SELECT to one backend through the client boundary
    and streams the result tuples into the middleware (paying marshalling
    and round-trip costs per {!Tango_dbms.Client}).  Under a sharded
    topology, one `TRANSFER^M` per shard feeds a {!Gather} merge.

    `TRANSFER^D` creates a uniquely-named table and bulk-loads its whole
    argument into the DBMS at [init] time — the direct-path-load analogue.
    Its cursor yields nothing; the data is consumed on the DBMS side by SQL
    referencing the created table, so the execution engine runs `TRANSFER^D`
    nodes before the `TRANSFER^M` that depends on them (the dashed
    "sequence" edges of paper Figure 5).  Under a sharded topology the
    table is {e replicated}: every backend gets a full copy, so per-shard
    SQL sees it ({!transfer_d_all}). *)

open Tango_rel
open Tango_sql
open Tango_dbms

(* Time one boundary call against [backend]'s attribution lane; [rows]
   extracts the crossing volume from the result.  Byte accounting only
   runs when a collector is listening. *)
let attributed backend ~rows f =
  if not (Attribution.active ()) then f ()
  else begin
    let name = Backend.name backend in
    let t0 = Tango_obs.mono_us () in
    let g0 = Tango_obs.Runtime.point () in
    let finish r =
      (* allocation delta first, before the byte-size fold below
         allocates on our own account *)
      let alloc_bytes = (Tango_obs.Runtime.delta_since g0).alloc_bytes in
      let us = Tango_obs.mono_us () -. t0 in
      let tuples = rows r in
      let bytes =
        Array.fold_left (fun acc t -> acc + Tuple.byte_size t) 0 tuples
      in
      Attribution.transfer ~backend:name ~rows:(Array.length tuples) ~bytes ~us
        ~alloc_bytes
    in
    match f () with
    | r ->
        finish r;
        r
    | exception e ->
        Attribution.transfer ~backend:name ~rows:0 ~bytes:0
          ~us:(Tango_obs.mono_us () -. t0)
          ~alloc_bytes:(Tango_obs.Runtime.delta_since g0).alloc_bytes;
        raise e
  end

let no_rows _ = [||]
let batch_rows = function Some b -> b | None -> [||]

(** `TRANSFER^M`.  [schema] is the expected output schema (from the algebra);
    the SQL's column order must match. *)
let transfer_m (backend : Backend.t) ~(schema : Schema.t) (sql : Ast.query) :
    Cursor.t =
  let cur = ref None in
  Cursor.observed "transfer_m"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         cur :=
           Some
             (attributed backend ~rows:no_rows (fun () ->
                  Backend.execute_query backend sql)))
       ~next_batch:(fun () ->
         match !cur with
         | None -> invalid_arg "TRANSFER^M: next before init"
         | Some c ->
             attributed backend ~rows:batch_rows (fun () ->
                 Backend.fetch_batch c)))

(* Load [arg]'s batches into [table] on every backend.  A single backend
   streams batch-at-a-time; with replicas the input is drained once and
   re-shipped to each. *)
let load_all (backends : Backend.t list) ~table schema (arg : Cursor.t) =
  Cursor.init arg;
  match backends with
  | [ b ] ->
      let rec batches () =
        match Cursor.next_batch arg with
        | None -> Seq.Nil
        | Some b -> Seq.Cons (b, batches)
      in
      let seq = Seq.concat_map Array.to_seq batches in
      (* the streamed load interleaves middleware pulls with the backend
         write, so the whole call counts as boundary time; rows were
         already counted crossing into the temp table by the meters *)
      ignore
        (attributed b ~rows:no_rows (fun () ->
             Backend.bulk_load b ~table schema seq))
  | bs ->
      let rec drain acc =
        match Cursor.next_batch arg with
        | None -> Array.concat (List.rev acc)
        | Some b -> drain (b :: acc)
      in
      let tuples = drain [] in
      List.iter
        (fun b ->
          ignore
            (attributed b ~rows:(fun _ -> tuples) (fun () ->
                 Backend.bulk_load b ~table schema (Array.to_seq tuples))))
        bs

(** `TRANSFER^D` to every backend of the topology: the created table is
    replicated, so any per-shard SQL can reference it.  The cursor itself
    is empty. *)
let transfer_d_all (backends : Backend.t list) ~(table : string)
    (arg : Cursor.t) : Cursor.t =
  let schema = Cursor.schema arg in
  Cursor.observed "transfer_d"
    (Cursor.make ~schema
       ~init:(fun () -> load_all backends ~table schema arg)
       ~next:(fun () -> None))

(** `TRANSFER^D` to a single backend. *)
let transfer_d (backend : Backend.t) ~(table : string) (arg : Cursor.t) :
    Cursor.t =
  transfer_d_all [ backend ] ~table arg

(** Drop the temporary tables a query created ("the table must be dropped at
    the end of the query"). *)
let drop_temp_table (backend : Backend.t) (table : string) =
  if Backend.table_exists backend table then Backend.drop_table backend table
