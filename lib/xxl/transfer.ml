(** The transfer algorithms, `TRANSFER^M` and `TRANSFER^D` (paper
    Section 3.2).

    `TRANSFER^M` issues a SELECT to the DBMS through the client boundary and
    streams the result tuples into the middleware (paying marshalling and
    round-trip costs per {!Tango_dbms.Client}).

    `TRANSFER^D` creates a uniquely-named table and bulk-loads its whole
    argument into the DBMS at [init] time — the direct-path-load analogue.
    Its cursor yields nothing; the data is consumed on the DBMS side by SQL
    referencing the created table, so the execution engine runs `TRANSFER^D`
    nodes before the `TRANSFER^M` that depends on them (the dashed
    "sequence" edges of paper Figure 5). *)

open Tango_rel
open Tango_sql
open Tango_dbms

(** `TRANSFER^M`.  [schema] is the expected output schema (from the algebra);
    the SQL's column order must match. *)
let transfer_m (client : Client.t) ~(schema : Schema.t) (sql : Ast.query) :
    Cursor.t =
  let cur = ref None in
  Cursor.observed "transfer_m"
    (Cursor.make_batched ~schema
       ~init:(fun () -> cur := Some (Client.execute_query_ast client sql))
       ~next_batch:(fun () ->
         match !cur with
         | None -> invalid_arg "TRANSFER^M: next before init"
         | Some c -> Client.fetch_batch c))

(** `TRANSFER^D`: loads [arg] into table [table]; the cursor itself is
    empty. *)
let transfer_d (client : Client.t) ~(table : string) (arg : Cursor.t) :
    Cursor.t =
  let schema = Cursor.schema arg in
  Cursor.observed "transfer_d"
    (Cursor.make ~schema
       ~init:(fun () ->
         Cursor.init arg;
         (* Feed the bulk load from batch pulls: the Seq below flattens
            one input batch at a time. *)
         let rec batches () =
           match Cursor.next_batch arg with
           | None -> Seq.Nil
           | Some b -> Seq.Cons (b, batches)
         in
         let seq = Seq.concat_map Array.to_seq batches in
         ignore (Client.bulk_load client ~table schema seq))
       ~next:(fun () -> None))

(** Drop the temporary tables a query created ("the table must be dropped at
    the end of the query"). *)
let drop_temp_table (client : Client.t) (table : string) =
  if Database.table_exists (Client.database client) table then
    Database.drop_table (Client.database client) table
