(** Batch-at-a-time middleware algorithms: `FILTER^M` and `PROJECT^M`,
    both order-preserving as the paper requires of middleware algorithms. *)

open Tango_rel
open Tango_sql

val array_filter : (Tuple.t -> bool) -> Tuple.t array -> Tuple.t array option
(** Order-preserving filter over one batch; [None] when nothing survives
    (so callers pull the next input batch).  Shared by the batch paths of
    `FILTER^M` and `DIFFERENCE^M`. *)

val filter : Ast.expr -> Cursor.t -> Cursor.t
(** `FILTER^M` (paper §3.3). *)

val project : (Ast.expr * string) list -> Cursor.t -> Cursor.t
(** `PROJECT^M`: generalized projection (expressions with output names). *)

val project_attrs : string list -> Cursor.t -> Cursor.t
(** Projection onto named attributes (outputs carry base names). *)
