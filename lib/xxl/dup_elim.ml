(** `DUPELIM^M` and `COALESCE^M` — the additional middleware algorithms the
    paper lists as future additions ("duplicate elimination, difference, and
    coalescing", Section 3.1).

    Both are one-pass algorithms over sorted input, and both are
    order-preserving:
    - duplicate elimination requires input sorted on all attributes and
      drops adjacent duplicates;
    - coalescing requires input sorted on the non-period attributes and
      [T1], and merges adjacent value-equivalent tuples whose periods
      overlap or meet.

    Duplicate elimination and difference are native batch producers
    (one input batch in, at most one output batch out); coalescing stays
    tuple-at-a-time because its output tuple is open-ended until the next
    non-mergeable input arrives. *)

open Tango_rel
open Tango_algebra

(** Drop adjacent duplicates; input must be sorted on all attributes. *)
let dup_elim (arg : Cursor.t) : Cursor.t =
  let schema = Cursor.schema arg in
  let last = ref None in
  Cursor.observed "dupelim"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         Cursor.init arg;
         last := None)
       ~next_batch:(fun () ->
         let rec go () =
           match Cursor.next_batch arg with
           | None -> None
           | Some b ->
               let out = ref [] in
               let n = ref 0 in
               Array.iter
                 (fun t ->
                   match !last with
                   | Some prev when Tuple.equal prev t -> ()
                   | _ ->
                       last := Some t;
                       out := t :: !out;
                       incr n)
                 b;
               if !n = 0 then go ()
               else Some (Array.of_list (List.rev !out))
         in
         go ()))

(** Multiset difference: left minus right, one occurrence removed per right
    tuple; order of the left input is preserved.  The right side is
    materialized at [init]. *)
let difference (left : Cursor.t) (right : Cursor.t) : Cursor.t =
  let schema = Cursor.schema left in
  let budget : (Value.t list, int) Hashtbl.t = Hashtbl.create 64 in
  let survives t =
    let k = Array.to_list t in
    match Hashtbl.find_opt budget k with
    | Some n when n > 0 ->
        Hashtbl.replace budget k (n - 1);
        false
    | _ -> true
  in
  Cursor.observed "difference"
    (Cursor.make_batched ~schema
       ~init:(fun () ->
         Cursor.init left;
         Hashtbl.reset budget;
         Cursor.iter
           (fun t ->
             let k = Array.to_list t in
             Hashtbl.replace budget k
               (1 + Option.value ~default:0 (Hashtbl.find_opt budget k)))
           right)
       ~next_batch:(fun () ->
         let rec go () =
           match Cursor.next_batch left with
           | None -> None
           | Some b -> (
               match Basic_ops.array_filter survives b with
               | None -> go ()
               | some -> some)
         in
         go ()))

(** Coalesce value-equivalent tuples; input must be sorted on the non-period
    attributes, then [T1]. *)
let coalesce (arg : Cursor.t) : Cursor.t =
  let schema = Cursor.schema arg in
  let t1_name, t2_name =
    match Op.period_attrs schema with
    | Some p -> p
    | None -> Op.ill_formed "COALESCE argument must be temporal"
  in
  let t1_idx = Schema.index schema t1_name
  and t2_idx = Schema.index schema t2_name in
  let nonperiod_idxs =
    List.map
      (fun (a : Schema.attribute) -> Schema.index schema a.name)
      (Op.non_period_attrs schema)
  in
  let same_value t1 t2 =
    List.for_all (fun i -> Value.equal t1.(i) t2.(i)) nonperiod_idxs
  in
  (* pending: the open coalesced tuple being extended *)
  let pending = ref None in
  Cursor.observed "coalesce"
    (Cursor.make ~schema
       ~init:(fun () ->
         Cursor.init arg;
         pending := None)
       ~next:(fun () ->
         let rec go () =
           match (Cursor.next arg, !pending) with
           | None, None -> None
           | None, Some p ->
               pending := None;
               Some p
           | Some t, None ->
               pending := Some (Array.copy t);
               go ()
           | Some t, Some p ->
               if
                 same_value p t
                 && Value.to_int t.(t1_idx) <= Value.to_int p.(t2_idx)
               then begin
                 (* extend the open period *)
                 if Value.compare t.(t2_idx) p.(t2_idx) > 0 then
                   p.(t2_idx) <- t.(t2_idx);
                 go ()
               end
               else begin
                 pending := Some (Array.copy t);
                 Some p
               end
         in
         go ()))
