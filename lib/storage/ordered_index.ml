(** Ordered secondary indexes over a heap-file attribute.

    Implemented as a sorted (key, rid) array with binary search — the
    behavioural stand-in for a B-tree: point and range lookups cost
    O(log n) plus one page read per fetched tuple (or none, for index-only
    range counting).  An index may be {e clustered}, meaning the heap file
    is stored in index order; the DBMS planner uses this for sort
    avoidance, as Oracle would (the paper's catalog records "clusterings
    for indexes"). *)

open Tango_rel

type entry = { key : Value.t; rid : Heap_file.rid }

type t = {
  attr : string;
  attr_index : int;
  clustered : bool;
  entries : entry array;
  stats : Io_stats.t;
}

(** Build an index on [attr] by scanning the file. *)
let build ?(clustered = false) ~stats file attr =
  let schema = Heap_file.schema file in
  let attr_index = Schema.index schema attr in
  let entries = ref [] in
  let n = ref 0 in
  for page = 0 to Heap_file.block_count file - 1 do
    let p = Heap_file.read_page file page in
    for slot = 0 to Page.tuple_count p - 1 do
      let t = Page.get p slot in
      entries := { key = t.(attr_index); rid = { Heap_file.page; slot } } :: !entries;
      incr n
    done
  done;
  let entries = Array.of_list !entries in
  Array.sort (fun a b -> Value.compare a.key b.key) entries;
  { attr; attr_index; clustered; entries; stats }

let attr i = i.attr
let clustered i = i.clustered
let entry_count i = Array.length i.entries

(* First position with key >= v (lower bound). *)
let lower_bound i v =
  let lo = ref 0 and hi = ref (Array.length i.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare i.entries.(mid).key v < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* First position with key > v (upper bound). *)
let upper_bound i v =
  let lo = ref 0 and hi = ref (Array.length i.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare i.entries.(mid).key v <= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(** Rids with key = [v]. *)
let lookup i v =
  Io_stats.record_index_lookup i.stats;
  let lo = lower_bound i v and hi = upper_bound i v in
  Array.to_list (Array.sub i.entries lo (hi - lo))
  |> List.map (fun e -> e.rid)

(** Rids with [lo <= key <= hi]; [None] bounds are open. *)
let range i ?lo ?hi () =
  Io_stats.record_index_lookup i.stats;
  let start = match lo with None -> 0 | Some v -> lower_bound i v in
  let stop =
    match hi with None -> Array.length i.entries | Some v -> upper_bound i v
  in
  Array.to_list (Array.sub i.entries start (max 0 (stop - start)))
  |> List.map (fun e -> e.rid)

(** Count of keys in the closed range without fetching tuples (index-only). *)
let range_count i ?lo ?hi () =
  Io_stats.record_index_lookup i.stats;
  let start = match lo with None -> 0 | Some v -> lower_bound i v in
  let stop =
    match hi with None -> Array.length i.entries | Some v -> upper_bound i v
  in
  max 0 (stop - start)
