(** Heap files: unordered collections of pages holding one table's tuples.

    Every page access goes through the file's {!Io_stats.t} so experiments
    can observe block-level work.  Record ids ([rid]) are (page, slot)
    pairs; indexes store them. *)

open Tango_rel

type rid = { page : int; slot : int }

type t = {
  id : int;  (** distinguishes files in a shared buffer pool *)
  schema : Schema.t;
  page_capacity : int;
  mutable pages : Page.t array;
  mutable page_count : int;
  mutable tuple_count : int;
  mutable byte_count : int;
  stats : Io_stats.t;
  pool : Buffer_pool.t option;
}

let next_file_id = ref 0

let create ?(page_capacity = Page.default_size) ?pool ~stats schema =
  incr next_file_id;
  {
    id = !next_file_id;
    schema;
    page_capacity;
    pages = [||];
    page_count = 0;
    tuple_count = 0;
    byte_count = 0;
    stats;
    pool;
  }

let schema f = f.schema
let block_count f = f.page_count
let tuple_count f = f.tuple_count
let byte_count f = f.byte_count

let avg_tuple_size f =
  if f.tuple_count = 0 then 0.0
  else float_of_int f.byte_count /. float_of_int f.tuple_count

let grow f =
  let cap = max 4 (2 * Array.length f.pages) in
  if f.page_count >= Array.length f.pages then begin
    let pages = Array.make cap (Page.create ~capacity:0 ()) in
    Array.blit f.pages 0 pages 0 f.page_count;
    f.pages <- pages
  end

let add_page f =
  grow f;
  let p = Page.create ~capacity:f.page_capacity () in
  f.pages.(f.page_count) <- p;
  f.page_count <- f.page_count + 1;
  Io_stats.record_page_write f.stats;
  p

(** Append a tuple, allocating a fresh page when the last one is full. *)
let append f (t : Tuple.t) : rid =
  let page =
    if f.page_count = 0 then add_page f else f.pages.(f.page_count - 1)
  in
  let page = if Page.append page t then page
    else begin
      let p = add_page f in
      if not (Page.append p t) then
        invalid_arg "Heap_file.append: tuple larger than page";
      p
    end
  in
  f.tuple_count <- f.tuple_count + 1;
  f.byte_count <- f.byte_count + Tuple.byte_size t;
  Io_stats.record_tuple_written f.stats;
  { page = f.page_count - 1; slot = Page.tuple_count page - 1 }

let file_id f = f.id

let read_page f i =
  if i < 0 || i >= f.page_count then invalid_arg "Heap_file.read_page";
  (* With a buffer pool, only misses pay a page read; a resident page costs
     nothing at the I/O level (its tuples are still deserialized). *)
  (match f.pool with
  | Some pool ->
      if not (Buffer_pool.touch pool { Buffer_pool.file_id = f.id; page_no = i })
      then Io_stats.record_page_read f.stats
  | None -> Io_stats.record_page_read f.stats);
  f.pages.(i)

(** Fetch a single tuple by rid (pays one page read). *)
let fetch f (r : rid) =
  let p = read_page f r.page in
  Io_stats.record_tuples_read f.stats 1;
  Page.get p r.slot

(** Full scan as a sequence; each page is charged once, each tuple is
    deserialized. *)
let scan f : Tuple.t Seq.t =
  let rec pages i () =
    if i >= f.page_count then Seq.Nil
    else begin
      let p = read_page f i in
      Io_stats.record_tuples_read f.stats (Page.tuple_count p);
      Seq.append (Page.to_seq p) (pages (i + 1)) ()
    end
  in
  pages 0

let iter fn f = Seq.iter fn (scan f)

(** Drop this file's pages from the shared buffer pool (table drop). *)
let invalidate f =
  match f.pool with
  | Some pool -> Buffer_pool.invalidate_file pool f.id
  | None -> ()

(** Load all tuples of a relation; returns the file. *)
let of_relation ?page_capacity ?pool ~stats (r : Relation.t) =
  let f = create ?page_capacity ?pool ~stats (Relation.schema r) in
  Relation.iter (fun t -> ignore (append f t)) r;
  f

let to_relation f =
  Relation.of_list f.schema (List.of_seq (scan f))
