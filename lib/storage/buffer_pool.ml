(** A shared LRU buffer pool over (file, page) identities.

    The simulated DBMS routes page reads through a pool: a hit means the
    page was already resident (no I/O charged), a miss charges a page read
    and may evict the least-recently-used resident page.  Pages live in the
    heap files themselves (this is a simulation of residency, not a cache of
    bytes), so the pool only tracks identities and recency — with O(1)
    touch/evict via an intrusive doubly-linked list. *)

type key = { file_id : int; page_no : int }

type node = {
  key : key;
  mutable prev : node option;
  mutable next : node option;
}

let c_hits = Tango_obs.Counter.make "storage.pool_hits"
let c_misses = Tango_obs.Counter.make "storage.pool_misses"
let c_evictions = Tango_obs.Counter.make "storage.pool_evictions"

type t = {
  capacity : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used *)
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    resident = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity p = p.capacity
let resident p = p.resident
let hits p = p.hits
let misses p = p.misses
let evictions p = p.evictions

let hit_ratio p =
  let total = p.hits + p.misses in
  if total = 0 then 0.0 else float_of_int p.hits /. float_of_int total

(* unlink a node from the recency list *)
let unlink p n =
  (match n.prev with
  | Some pr -> pr.next <- n.next
  | None -> p.head <- n.next);
  (match n.next with
  | Some nx -> nx.prev <- n.prev
  | None -> p.tail <- n.prev);
  n.prev <- None;
  n.next <- None

(* push a node to the front (most recently used) *)
let push_front p n =
  n.next <- p.head;
  n.prev <- None;
  (match p.head with Some h -> h.prev <- Some n | None -> ());
  p.head <- Some n;
  if p.tail = None then p.tail <- Some n

let evict_lru p =
  match p.tail with
  | None -> ()
  | Some lru ->
      unlink p lru;
      Hashtbl.remove p.table lru.key;
      p.resident <- p.resident - 1;
      p.evictions <- p.evictions + 1;
      Tango_obs.Counter.incr c_evictions

(** [touch p key]: record an access.  Returns [true] on a hit (page was
    resident), [false] on a miss (page is now resident, after evicting the
    LRU page if the pool was full). *)
let touch p key =
  match Hashtbl.find_opt p.table key with
  | Some n ->
      p.hits <- p.hits + 1;
      Tango_obs.Counter.incr c_hits;
      unlink p n;
      push_front p n;
      true
  | None ->
      p.misses <- p.misses + 1;
      Tango_obs.Counter.incr c_misses;
      if p.resident >= p.capacity then evict_lru p;
      let n = { key; prev = None; next = None } in
      Hashtbl.replace p.table key n;
      push_front p n;
      p.resident <- p.resident + 1;
      false

(** Drop every page of a file (table drop / truncation). *)
let invalidate_file p file_id =
  let victims =
    Hashtbl.fold
      (fun k n acc -> if k.file_id = file_id then (k, n) :: acc else acc)
      p.table []
  in
  List.iter
    (fun (k, n) ->
      unlink p n;
      Hashtbl.remove p.table k;
      p.resident <- p.resident - 1)
    victims

let reset_counters p =
  p.hits <- 0;
  p.misses <- 0;
  p.evictions <- 0

let pp ppf p =
  Fmt.pf ppf "pool cap=%d resident=%d hits=%d misses=%d evictions=%d (%.0f%%)"
    p.capacity p.resident p.hits p.misses p.evictions (100.0 *. hit_ratio p)
