(** I/O accounting for the simulated storage layer — the substitute for
    Oracle's block-read statistics.  Every component that touches pages
    increments these counters via the [record_*] functions, which also
    mirror the event into the process-wide {!Tango_obs} registry under
    [storage.*] names. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable tuples_read : int;
  mutable tuples_written : int;
  mutable index_lookups : int;
}

val create : unit -> t

val record_page_read : t -> unit
val record_page_write : t -> unit
val record_tuples_read : t -> int -> unit
val record_tuple_written : t -> unit
val record_index_lookup : t -> unit
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier]: counter deltas between two snapshots. *)

val pp : Format.formatter -> t -> unit
