(** I/O accounting for the simulated storage layer.

    Every component that touches pages increments these counters; experiments
    and the cost calibrator read them to reason about work performed (the
    substitute for Oracle's block-read statistics).

    Each per-file/per-catalog record is mirrored into the process-wide
    {!Tango_obs} registry under [storage.*] names through the [record_*]
    functions, so traces and metric exports see storage work without
    holding a reference to any particular [t]. *)

type t = {
  mutable page_reads : int;
  mutable page_writes : int;
  mutable tuples_read : int;
  mutable tuples_written : int;
  mutable index_lookups : int;
}

(* process-wide mirrors (see Tango_obs: find-or-create by name) *)
let c_page_reads = Tango_obs.Counter.make "storage.page_reads"
let c_page_writes = Tango_obs.Counter.make "storage.page_writes"
let c_tuples_read = Tango_obs.Counter.make "storage.tuples_read"
let c_tuples_written = Tango_obs.Counter.make "storage.tuples_written"
let c_index_lookups = Tango_obs.Counter.make "storage.index_lookups"

let record_page_read s =
  s.page_reads <- s.page_reads + 1;
  Tango_obs.Counter.incr c_page_reads

let record_page_write s =
  s.page_writes <- s.page_writes + 1;
  Tango_obs.Counter.incr c_page_writes

let record_tuples_read s n =
  s.tuples_read <- s.tuples_read + n;
  Tango_obs.Counter.add c_tuples_read n

let record_tuple_written s =
  s.tuples_written <- s.tuples_written + 1;
  Tango_obs.Counter.incr c_tuples_written

let record_index_lookup s =
  s.index_lookups <- s.index_lookups + 1;
  Tango_obs.Counter.incr c_index_lookups

let create () =
  {
    page_reads = 0;
    page_writes = 0;
    tuples_read = 0;
    tuples_written = 0;
    index_lookups = 0;
  }

let reset s =
  s.page_reads <- 0;
  s.page_writes <- 0;
  s.tuples_read <- 0;
  s.tuples_written <- 0;
  s.index_lookups <- 0

let copy s =
  {
    page_reads = s.page_reads;
    page_writes = s.page_writes;
    tuples_read = s.tuples_read;
    tuples_written = s.tuples_written;
    index_lookups = s.index_lookups;
  }

(** [diff later earlier]: counter deltas between two snapshots. *)
let diff a b =
  {
    page_reads = a.page_reads - b.page_reads;
    page_writes = a.page_writes - b.page_writes;
    tuples_read = a.tuples_read - b.tuples_read;
    tuples_written = a.tuples_written - b.tuples_written;
    index_lookups = a.index_lookups - b.index_lookups;
  }

let pp ppf s =
  Fmt.pf ppf
    "reads=%d writes=%d tuples_read=%d tuples_written=%d index_lookups=%d"
    s.page_reads s.page_writes s.tuples_read s.tuples_written s.index_lookups
