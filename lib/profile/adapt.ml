(** Adaptive recalibration: threshold check over the feedback store's
    per-factor q-error aggregates, refit via {!Tango_cost.Calibrate.refit},
    in-place install into the session factors. *)

open Tango_cost

type params = { q_threshold : float; min_samples : int }

let default_params = { q_threshold = 1.5; min_samples = 3 }

let refits = Tango_obs.Counter.make "profile.cost_refits"

let log_src = Logs.Src.create "tango.profile" ~doc:"TANGO profiling & adaptation"

module Log = (val Logs.src_log log_src : Logs.LOG)

let maybe_refit ?(params = default_params) (store : Feedback.t)
    ~(factors : Factors.t) : string list option =
  let triggered =
    List.filter_map
      (fun (factor, (samples, mean_q)) ->
        if samples >= params.min_samples && mean_q >= params.q_threshold then
          Some factor
        else None)
      (Feedback.factor_q store)
  in
  if triggered = [] then None
  else begin
    let obs =
      List.filter
        (fun (o : Calibrate.observation) ->
          List.mem o.Calibrate.factor triggered)
        (Feedback.observations store)
    in
    let fitted, refitted =
      Calibrate.refit ~min_samples:params.min_samples ~base:factors obs
    in
    if refitted = [] then None
    else begin
      List.iter
        (fun name ->
          match Factors.get_by_name fitted name with
          | Some v -> ignore (Factors.set_by_name factors name v)
          | None -> ())
        refitted;
      Feedback.clear_window store;
      Tango_obs.Counter.incr refits;
      Log.info (fun m ->
          m "adaptive recalibration: refitted %s; factors now %a"
            (String.concat ", " refitted)
            Factors.pp factors);
      Some refitted
    end
  end
