(** Per-backend cost factors, keyed by backend name (the cost-factor
    handle of [Tango_dbms.Backend]).  Shards behind different simulated
    latencies calibrate independently; lookups fall back to the session's
    base factors until a backend has calibrated. *)

open Tango_cost

type t

val create : base:(unit -> Factors.t) -> t
(** [base] supplies the fallback factors (called per lookup, so adaptive
    refits of the global factors flow through). *)

val set : t -> string -> Factors.t -> unit
val get : t -> string -> Factors.t
val known : t -> string -> bool
val names : t -> string list
val clear : t -> unit
