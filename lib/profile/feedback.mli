(** The feedback store: misestimation statistics accumulated across
    queries.

    Per-operator EXPLAIN ANALYZE records ({!Analyze.record}) are keyed by
    their {e plan-fragment fingerprint} ({!Tango_volcano.Physical.
    fingerprint}), so the same fragment recurring across queries — or
    across different literals of one parameterized query — aggregates
    into one entry.  The store also keeps a bounded window of refit
    observations and per-cost-factor q-error aggregates, which drive the
    adaptive recalibration loop ({!Adapt}). *)

open Tango_cost

type stats = {
  operator : string;
  executions : int;
  mean_q_rows : float;
  mean_q_cost : float;
  max_q_rows : float;
  max_q_cost : float;
  mean_act_us : float;
}

type t

val create : ?max_observations:int -> unit -> t
(** [max_observations] (default 1024) bounds the refit window; the oldest
    observations are dropped first. *)

val record : t -> Analyze.report -> unit
(** Fold one analyzed execution into the store. *)

val queries : t -> int
(** Executions recorded since creation (or the last {!clear_window}). *)

val find : t -> string -> stats option
(** Aggregate statistics for one fragment fingerprint. *)

val fragments : t -> (string * stats) list
(** All fragments, worst mean cost q-error first. *)

val factor_q : t -> (string * (int * float)) list
(** Per cost factor: (samples, mean cost q-error) of the operators priced
    by that factor — the adaptation trigger signal. *)

val observations : t -> Calibrate.observation list
(** The current refit window, oldest first. *)

val clear_window : t -> unit
(** Drop the refit observations and q-error aggregates (called after a
    refit so the next adaptation needs fresh evidence). *)

val to_json : t -> Tango_obs.Json.t
