(** Plan-regression sentinel and slow-query log.

    Remembers the best observed plan (signature + latency) per query
    fingerprint.  When a later execution of the same query picks a
    {e different} plan and runs slower than the best by more than a
    configurable ratio, that is flagged as a plan regression — e.g. an
    adaptive recalibration that made things worse.  Executions past an
    absolute latency threshold are logged as slow queries. *)

type event =
  | Slow of { elapsed_us : float; threshold_us : float }
  | Regression of {
      elapsed_us : float;
      best_us : float;
      best_signature : string;
      chosen_signature : string;
    }

type entry = {
  query_fingerprint : string;
  signature : string;  (** one-line summary of the executed plan *)
  elapsed_us : float;
  event : event;
  seq : int;  (** execution ordinal at which the event fired *)
}

type t

val create : ?regression_ratio:float -> ?max_log:int -> unit -> t
(** [regression_ratio] (default 1.5): a changed plan slower than
    [ratio *. best] is a regression.  [max_log] (default 64) bounds the
    event log, newest kept. *)

val slow_queries : Tango_obs.Counter.t
(** ["profile.slow_queries"] *)

val plan_regressions : Tango_obs.Counter.t
(** ["profile.plan_regressions"] *)

val observe :
  t ->
  fingerprint:string ->
  signature:string ->
  ?slow_threshold_us:float ->
  elapsed_us:float ->
  unit ->
  event list
(** Record one execution of the query identified by [fingerprint], whose
    chosen plan renders as [signature].  Fires [Slow] when
    [slow_threshold_us > 0.] and the execution is at least that slow;
    fires [Regression] per the ratio rule.  Also advances the best-plan
    table.  Returned events are already counted and logged. *)

val best : t -> string -> (string * float) option
(** Best observed (plan signature, latency in us) for a query
    fingerprint. *)

val log : t -> entry list
(** Flagged events, newest first. *)

val to_json : t -> Tango_obs.Json.t
