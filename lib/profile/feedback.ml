(** The feedback store: per-fragment misestimation aggregates plus a
    bounded window of refit observations.  See the mli for the model.

    Domain safety: the aggregate tables and the observation window are
    guarded by the instance's {!Tango_obs.Dsync} lock, so profiling
    reports can be folded in from a multi-domain accept pool. *)

open Tango_cost
module Json = Tango_obs.Json
module Dsync = Tango_obs.Dsync

type stats = {
  operator : string;
  executions : int;
  mean_q_rows : float;
  mean_q_cost : float;
  max_q_rows : float;
  max_q_cost : float;
  mean_act_us : float;
}

type agg = {
  op_name : string;
  mutable executions : int;
  mutable sum_q_rows : float;
  mutable sum_q_cost : float;
  mutable max_q_rows : float;
  mutable max_q_cost : float;
  mutable sum_act_us : float;
}

type t = {
  lock : Dsync.lock;  (* guards the tables and every mutable field *)
  frags : (string, agg) Hashtbl.t;  (* fragment fingerprint -> aggregate *)
  factors : (string, agg) Hashtbl.t;  (* cost factor -> aggregate *)
  mutable observations : Calibrate.observation list;  (* newest first *)
  mutable n_obs : int;
  max_observations : int;
  mutable queries : int;
}

let create ?(max_observations = 1024) () : t =
  {
    lock = Dsync.named_lock "profile.feedback";
    frags = Hashtbl.create 64;
    factors = Hashtbl.create 16;
    observations = [];
    n_obs = 0;
    max_observations;
    queries = 0;
  }

(* The cost factor that prices each middleware operator — the grouping
   under which misestimates trigger a refit. *)
let factor_of_operator = function
  | "TRANSFER^M" -> Some "p_tm"
  | "SORT^M" -> Some "p_sortm"
  | "FILTER^M" -> Some "p_sem"
  | "PROJECT^M" -> Some "p_pm"
  | "MERGEJOIN^M" -> Some "p_mjm1"
  | "TJOIN^M" -> Some "p_tjm1"
  | "TAGGR^M" -> Some "p_taggm1"
  | _ -> None

(* Only called with the owning store's lock held. *)
let get_agg table key op_name =
  match Hashtbl.find_opt table key with
  | Some a -> a
  | None ->
      let a =
        {
          op_name;
          executions = 0;
          sum_q_rows = 0.0;
          sum_q_cost = 0.0;
          max_q_rows = 1.0;
          max_q_cost = 1.0;
          sum_act_us = 0.0;
        }
      in
      Hashtbl.replace table key a;
      a
[@@tango.unguarded "internal helper, only called under t.lock"]

let fold_record (a : agg) (r : Analyze.record) =
  a.executions <- a.executions + 1;
  a.sum_q_rows <- a.sum_q_rows +. r.Analyze.q_rows;
  a.sum_q_cost <- a.sum_q_cost +. r.Analyze.q_cost;
  a.max_q_rows <- Float.max a.max_q_rows r.Analyze.q_rows;
  a.max_q_cost <- Float.max a.max_q_cost r.Analyze.q_cost;
  a.sum_act_us <- a.sum_act_us +. r.Analyze.act_us
[@@tango.unguarded "internal helper, only called under t.lock"]

let record (t : t) (report : Analyze.report) =
  Dsync.protect t.lock (fun () ->
      t.queries <- t.queries + 1;
      List.iter
        (fun (r : Analyze.record) ->
          fold_record
            (get_agg t.frags r.Analyze.fingerprint r.Analyze.operator)
            r;
          match factor_of_operator r.Analyze.operator with
          | Some f -> fold_record (get_agg t.factors f r.Analyze.operator) r
          | None -> ())
        report.Analyze.records;
      t.observations <-
        List.rev_append report.Analyze.observations t.observations;
      t.n_obs <- t.n_obs + List.length report.Analyze.observations;
      if t.n_obs > t.max_observations then begin
        (* drop the oldest (tail of the newest-first list) *)
        t.observations <-
          List.filteri (fun i _ -> i < t.max_observations) t.observations;
        t.n_obs <- t.max_observations
      end)

let queries t = Dsync.protect t.lock (fun () -> t.queries)

let stats_of (a : agg) : stats =
  let n = Float.max 1.0 (float_of_int a.executions) in
  {
    operator = a.op_name;
    executions = a.executions;
    mean_q_rows = a.sum_q_rows /. n;
    mean_q_cost = a.sum_q_cost /. n;
    max_q_rows = a.max_q_rows;
    max_q_cost = a.max_q_cost;
    mean_act_us = a.sum_act_us /. n;
  }

let find (t : t) fp =
  Dsync.protect t.lock (fun () ->
      Option.map stats_of (Hashtbl.find_opt t.frags fp))

let fragments (t : t) : (string * stats) list =
  Dsync.protect t.lock (fun () ->
      Hashtbl.fold (fun fp a acc -> (fp, stats_of a) :: acc) t.frags [])
  |> List.sort (fun (_, a) (_, b) -> compare b.mean_q_cost a.mean_q_cost)

let factor_q (t : t) : (string * (int * float)) list =
  Dsync.protect t.lock (fun () ->
      Hashtbl.fold
        (fun f a acc ->
          ( f,
            ( a.executions,
              a.sum_q_cost /. Float.max 1.0 (float_of_int a.executions) ) )
          :: acc)
        t.factors [])
  |> List.sort compare

let observations (t : t) =
  Dsync.protect t.lock (fun () -> List.rev t.observations)

let clear_window (t : t) =
  Dsync.protect t.lock (fun () ->
      t.observations <- [];
      t.n_obs <- 0;
      t.queries <- 0;
      Hashtbl.reset t.frags;
      Hashtbl.reset t.factors)

let stats_to_json (s : stats) : Json.t =
  Json.Obj
    [
      ("operator", Json.String s.operator);
      ("executions", Json.Int s.executions);
      ("mean_q_rows", Json.Float s.mean_q_rows);
      ("mean_q_cost", Json.Float s.mean_q_cost);
      ("max_q_rows", Json.Float s.max_q_rows);
      ("max_q_cost", Json.Float s.max_q_cost);
      ("mean_act_us", Json.Float s.mean_act_us);
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("queries", Json.Int t.queries);
      ( "fragments",
        Json.Obj
          (List.map (fun (fp, s) -> (fp, stats_to_json s)) (fragments t)) );
      ( "factor_q",
        Json.Obj
          (List.map
             (fun (f, (n, q)) ->
               ( f,
                 Json.Obj
                   [ ("samples", Json.Int n); ("mean_q_cost", Json.Float q) ]
               ))
             (factor_q t)) );
    ]
