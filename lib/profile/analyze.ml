(** EXPLAIN ANALYZE for middleware plans: pair the optimized physical
    plan with the measured operator trace and compute per-operator
    estimated-vs-actual records with q-errors.

    Pairing mirrors [Exec_plan.of_physical]: a `TRANSFER^M` plan node
    absorbs its whole DBMS-resident subtree (which executes as one SQL
    statement), and its trace children are the middleware pipelines
    feeding `TRANSFER^D` temp tables; every other middleware operator
    maps 1:1.  Estimates are re-derived from the statistics environment
    at each node, actuals come from the instrumented cursors. *)

open Tango_algebra
open Tango_stats
open Tango_cost
open Tango_volcano
module Trace = Tango_obs.Trace
module Json = Tango_obs.Json

let q_error ?(floor = 1.0) ~est ~actual () =
  let floor = Float.max floor 1e-9 in
  let e = Float.max floor est and a = Float.max floor actual in
  Float.max (e /. a) (a /. e)

type record = {
  operator : string;
  depth : int;
  fingerprint : string;
  est_rows : float;
  act_rows : int;
  est_bytes : float;
  act_bytes : float;
  est_us : float;
  act_us : float;
  est_self_us : float;
  act_self_us : float;
  est_pages : float;
  act_pages : int;
  est_roundtrips : float;
  act_roundtrips : int;
  q_rows : float;
  q_cost : float;
}

type report = {
  records : record list;
  fingerprint : string;
  mean_q_rows : float;
  mean_q_cost : float;
  max_q_rows : float;
  max_q_cost : float;
  total_est_us : float;
  total_act_us : float;
  observations : Calibrate.observation list;
}

(* ------------------------------------------------------------------ *)
(* Pairing the plan with the trace                                      *)
(* ------------------------------------------------------------------ *)

let rec collect_tds (p : Physical.plan) : Physical.plan list =
  match p.Physical.algorithm with
  | Physical.Transfer_d_algo -> [ p ]
  | _ -> List.concat_map collect_tds p.Physical.children

(* The children a plan node has in the executed pipeline (and hence in
   the trace): TRANSFER^M's children are the middleware sources of its
   TRANSFER^D dependencies; everything else is structural. *)
let paired_children (p : Physical.plan) : Physical.plan list =
  match (p.Physical.algorithm, p.Physical.children) with
  | (Physical.Transfer_m_algo | Physical.Scatter_gather_m), [ db_child ] ->
      List.filter_map
        (fun (td : Physical.plan) ->
          match td.Physical.children with [ mw ] -> Some mw | _ -> None)
        (collect_tds db_child)
  | (Physical.Transfer_m_algo | Physical.Scatter_gather_m), _ -> []
  | _ -> p.Physical.children

let rec zip xs ys =
  match (xs, ys) with
  | x :: xs, y :: ys -> (x, y) :: zip xs ys
  | _ -> []

let attr_i span name = Option.value ~default:0 (Trace.attr_int span name)

(* Measured time attributed to one cost coefficient, with the formula's
   other (known) terms stripped using the current factors — the same
   residual scheme the probe fits use.  Returns (factor, x, t). *)
let observation_of ~(factors : Factors.t) (p : Physical.plan) ~in_bytes
    ~out_bytes ~self_us : Calibrate.observation option =
  let residual raw t = Float.max (0.05 *. raw) t in
  let obs factor x elapsed_us =
    if x > 0.0 && elapsed_us > 0.0 then
      Some { Calibrate.factor; x; elapsed_us }
    else None
  in
  match p.Physical.algorithm with
  | Physical.Transfer_m_algo | Physical.Scatter_gather_m ->
      (* the whole time — wire plus the DBMS statement below it — goes to
         the transfer factor; splitting it is the paper's "interesting
         challenge", and [Middleware.apply_feedback] makes the same call *)
      obs "p_tm" out_bytes self_us
  | Physical.Sort_m ->
      obs "p_sortm" (in_bytes *. Formulas.sort_levels ~size:in_bytes) self_us
  | Physical.Filter_m ->
      let terms =
        match p.Physical.op with
        | Op.Select { pred; _ } -> Formulas.predicate_coefficient pred
        | _ -> 1.0
      in
      obs "p_sem" (terms *. in_bytes) self_us
  | Physical.Project_m -> obs "p_pm" in_bytes self_us
  | Physical.Merge_join_m ->
      obs "p_mjm1" in_bytes
        (residual self_us (self_us -. (factors.Factors.p_mjm2 *. out_bytes)))
  | Physical.Tjoin_m ->
      obs "p_tjm1" in_bytes
        (residual self_us (self_us -. (factors.Factors.p_tjm2 *. out_bytes)))
  | Physical.Taggr_m ->
      obs "p_taggm1" in_bytes
        (residual self_us
           (self_us
           -. Formulas.sort_m factors ~size:in_bytes
           -. (factors.Factors.p_taggm2 *. out_bytes)))
  | _ -> None

let analyze ~(stats_env : Derive.env) ~(factors : Factors.t)
    ?(row_prefetch = 10) ?(page_size = 4096) (plan : Physical.plan)
    (span : Trace.span) : report =
  let records = ref [] in
  let observations = ref [] in
  let rec walk depth (p : Physical.plan) (s : Trace.span) =
    let pairs = zip (paired_children p) s.Trace.children in
    let est_stats =
      try Some (Derive.derive stats_env p.Physical.op) with _ -> None
    in
    let est_rows =
      match est_stats with Some st -> st.Rel_stats.card | None -> 0.0
    in
    let est_bytes =
      match est_stats with Some st -> Rel_stats.size st | None -> 0.0
    in
    let act_rows = attr_i s "tuples" in
    let act_bytes = float_of_int (attr_i s "bytes") in
    let act_us = s.Trace.elapsed_us in
    let est_us = p.Physical.total_cost in
    let child_est =
      List.fold_left
        (fun acc ((c : Physical.plan), _) -> acc +. c.Physical.total_cost)
        0.0 pairs
    in
    let child_act =
      List.fold_left
        (fun acc (_, (cs : Trace.span)) -> acc +. cs.Trace.elapsed_us)
        0.0 pairs
    in
    let est_self_us = Float.max 0.0 (est_us -. child_est) in
    let act_self_us = Float.max 0.0 (act_us -. child_act) in
    let in_bytes =
      match pairs with
      | [] -> act_bytes (* leaf transfer: its own output feeds nothing below *)
      | _ ->
          List.fold_left
            (fun acc (_, (cs : Trace.span)) ->
              acc +. float_of_int (attr_i cs "bytes"))
            0.0 pairs
    in
    let is_transfer =
      match p.Physical.algorithm with
      | Physical.Transfer_m_algo | Physical.Scatter_gather_m -> true
      | _ -> false
    in
    let est_pages = if is_transfer then est_bytes /. float_of_int page_size else 0.0 in
    let est_roundtrips =
      if is_transfer then
        Float.of_int (int_of_float (ceil (est_rows /. float_of_int (max 1 row_prefetch)))) +. 1.0
      else 0.0
    in
    let record =
      {
        operator = Physical.algorithm_name p.Physical.algorithm;
        depth;
        fingerprint = Physical.fingerprint p;
        est_rows;
        act_rows;
        est_bytes;
        act_bytes;
        est_us;
        act_us;
        est_self_us;
        act_self_us;
        est_pages;
        act_pages = attr_i s "page_reads";
        est_roundtrips;
        act_roundtrips = attr_i s "roundtrips";
        q_rows = q_error ~est:est_rows ~actual:(float_of_int act_rows) ();
        q_cost = q_error ~est:est_us ~actual:act_us ();
      }
    in
    records := record :: !records;
    (match
       observation_of ~factors p ~in_bytes ~out_bytes:act_bytes
         ~self_us:act_self_us
     with
    | Some o -> observations := o :: !observations
    | None -> ());
    List.iter (fun (c, cs) -> walk (depth + 1) c cs) pairs
  in
  walk 0 plan span;
  let records = List.rev !records in
  let n = Float.max 1.0 (float_of_int (List.length records)) in
  let fold f init = List.fold_left f init records in
  {
    records;
    fingerprint = Physical.fingerprint plan;
    mean_q_rows = fold (fun a r -> a +. r.q_rows) 0.0 /. n;
    mean_q_cost = fold (fun a r -> a +. r.q_cost) 0.0 /. n;
    max_q_rows = fold (fun a r -> Float.max a r.q_rows) 1.0;
    max_q_cost = fold (fun a r -> Float.max a r.q_cost) 1.0;
    total_est_us = plan.Physical.total_cost;
    total_act_us = span.Trace.elapsed_us;
    observations = List.rev !observations;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let render ppf (r : report) =
  Fmt.pf ppf
    "plan %s: estimated %.1f ms, actual %.1f ms (q-error: rows mean %.2f max \
     %.2f, cost mean %.2f max %.2f)@."
    r.fingerprint
    (r.total_est_us /. 1000.0)
    (r.total_act_us /. 1000.0)
    r.mean_q_rows r.max_q_rows r.mean_q_cost r.max_q_cost;
  List.iter
    (fun rec_ ->
      Fmt.pf ppf
        "%s%-14s rows %7.0f/%-7d q=%-6.2f  time %9.2f/%-9.2f ms q=%-6.2f%s@."
        (String.make (2 * rec_.depth) ' ')
        rec_.operator rec_.est_rows rec_.act_rows rec_.q_rows
        (rec_.est_us /. 1000.0)
        (rec_.act_us /. 1000.0)
        rec_.q_cost
        (if rec_.act_pages > 0 || rec_.act_roundtrips > 0 then
           Fmt.str "  pages %.0f/%d rt %.0f/%d" rec_.est_pages rec_.act_pages
             rec_.est_roundtrips rec_.act_roundtrips
         else ""))
    r.records

let to_string r = Fmt.str "%a" render r

let record_to_json (r : record) : Json.t =
  Json.Obj
    [
      ("operator", Json.String r.operator);
      ("depth", Json.Int r.depth);
      ("fingerprint", Json.String r.fingerprint);
      ("est_rows", Json.Float r.est_rows);
      ("act_rows", Json.Int r.act_rows);
      ("est_bytes", Json.Float r.est_bytes);
      ("act_bytes", Json.Float r.act_bytes);
      ("est_us", Json.Float r.est_us);
      ("act_us", Json.Float r.act_us);
      ("est_self_us", Json.Float r.est_self_us);
      ("act_self_us", Json.Float r.act_self_us);
      ("est_pages", Json.Float r.est_pages);
      ("act_pages", Json.Int r.act_pages);
      ("est_roundtrips", Json.Float r.est_roundtrips);
      ("act_roundtrips", Json.Int r.act_roundtrips);
      ("q_rows", Json.Float r.q_rows);
      ("q_cost", Json.Float r.q_cost);
    ]

let to_json (r : report) : Json.t =
  Json.Obj
    [
      ("fingerprint", Json.String r.fingerprint);
      ("mean_q_rows", Json.Float r.mean_q_rows);
      ("mean_q_cost", Json.Float r.mean_q_cost);
      ("max_q_rows", Json.Float r.max_q_rows);
      ("max_q_cost", Json.Float r.max_q_cost);
      ("total_est_us", Json.Float r.total_est_us);
      ("total_act_us", Json.Float r.total_act_us);
      ("operators", Json.List (List.map record_to_json r.records));
    ]
