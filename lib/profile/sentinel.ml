(** Plan-regression sentinel: best-plan table per query fingerprint,
    ratio-triggered regression flags, absolute-threshold slow-query log. *)

module Json = Tango_obs.Json
module Dsync = Tango_obs.Dsync

type event =
  | Slow of { elapsed_us : float; threshold_us : float }
  | Regression of {
      elapsed_us : float;
      best_us : float;
      best_signature : string;
      chosen_signature : string;
    }

type entry = {
  query_fingerprint : string;
  signature : string;
  elapsed_us : float;
  event : event;
  seq : int;
}

type t = {
  lock : Dsync.lock;  (* guards [best], [entries], [n_entries], [seq] *)
  best : (string, string * float) Hashtbl.t;
      (* query fingerprint -> (plan signature, best latency us) *)
  mutable entries : entry list; (* newest first *)
  mutable n_entries : int;
  mutable seq : int;
  regression_ratio : float;
  max_log : int;
}

let create ?(regression_ratio = 1.5) ?(max_log = 64) () : t =
  {
    lock = Dsync.named_lock "profile.sentinel";
    best = Hashtbl.create 32;
    entries = [];
    n_entries = 0;
    seq = 0;
    regression_ratio;
    max_log;
  }

let slow_queries = Tango_obs.Counter.make "profile.slow_queries"
let plan_regressions = Tango_obs.Counter.make "profile.plan_regressions"

let log_src = Logs.Src.create "tango.sentinel" ~doc:"TANGO plan sentinel"

module Log = (val Logs.src_log log_src : Logs.LOG)

let push (t : t) (e : entry) =
  t.entries <- e :: t.entries;
  t.n_entries <- t.n_entries + 1;
  if t.n_entries > t.max_log then begin
    t.entries <- List.filteri (fun i _ -> i < t.max_log) t.entries;
    t.n_entries <- t.max_log
  end
[@@tango.unguarded "internal helper, only called under t.lock"]

let observe (t : t) ~fingerprint ~signature ?(slow_threshold_us = 0.0)
    ~elapsed_us () : event list =
  (* table and log updates happen under the lock; counters are atomic
     and the Logs calls run after release, so a slow reporter never
     extends the critical section *)
  let events, log_fns =
    Dsync.protect t.lock (fun () ->
        t.seq <- t.seq + 1;
        let events = ref [] and log_fns = ref [] in
        let fire counter ev log_fn =
          Tango_obs.Counter.incr counter;
          push t
            { query_fingerprint = fingerprint; signature; elapsed_us;
              event = ev; seq = t.seq };
          log_fns := log_fn :: !log_fns;
          events := ev :: !events
        in
        if slow_threshold_us > 0.0 && elapsed_us >= slow_threshold_us then
          fire slow_queries
            (Slow { elapsed_us; threshold_us = slow_threshold_us })
            (fun () ->
              Log.warn (fun m ->
                  m "slow query %s: %.1f ms (threshold %.1f ms) plan %s"
                    fingerprint
                    (elapsed_us /. 1000.0)
                    (slow_threshold_us /. 1000.0)
                    signature));
        (match Hashtbl.find_opt t.best fingerprint with
        | Some (best_sig, best_us)
          when best_sig <> signature
               && elapsed_us > t.regression_ratio *. best_us ->
            fire plan_regressions
              (Regression
                 { elapsed_us; best_us; best_signature = best_sig;
                   chosen_signature = signature })
              (fun () ->
                Log.warn (fun m ->
                    m "plan regression for %s: %.1f ms vs best %.1f ms; \
                       chose %s over %s"
                      fingerprint (elapsed_us /. 1000.0) (best_us /. 1000.0)
                      signature best_sig))
        | _ -> ());
        (match Hashtbl.find_opt t.best fingerprint with
        | Some (_, best_us) when elapsed_us >= best_us -> ()
        | _ -> Hashtbl.replace t.best fingerprint (signature, elapsed_us));
        (List.rev !events, List.rev !log_fns))
  in
  List.iter (fun f -> f ()) log_fns;
  events

let best (t : t) fp =
  Dsync.protect t.lock (fun () -> Hashtbl.find_opt t.best fp)

let log (t : t) = Dsync.protect t.lock (fun () -> t.entries)

let event_to_json = function
  | Slow { elapsed_us; threshold_us } ->
      Json.Obj
        [
          ("kind", Json.String "slow_query");
          ("elapsed_us", Json.Float elapsed_us);
          ("threshold_us", Json.Float threshold_us);
        ]
  | Regression { elapsed_us; best_us; best_signature; chosen_signature } ->
      Json.Obj
        [
          ("kind", Json.String "plan_regression");
          ("elapsed_us", Json.Float elapsed_us);
          ("best_us", Json.Float best_us);
          ("best_signature", Json.String best_signature);
          ("chosen_signature", Json.String chosen_signature);
        ]

let entry_to_json (e : entry) : Json.t =
  Json.Obj
    [
      ("query", Json.String e.query_fingerprint);
      ("signature", Json.String e.signature);
      ("elapsed_us", Json.Float e.elapsed_us);
      ("seq", Json.Int e.seq);
      ("event", event_to_json e.event);
    ]

let to_json (t : t) : Json.t =
  let best_plans, entries =
    Dsync.protect t.lock (fun () ->
        ( Hashtbl.fold
            (fun fp (sg, us) acc ->
              ( fp,
                Json.Obj
                  [ ("signature", Json.String sg); ("best_us", Json.Float us) ]
              )
              :: acc)
            t.best [],
          t.entries ))
  in
  Json.Obj
    [
      ("best_plans", Json.Obj best_plans);
      ("log", Json.List (List.map entry_to_json entries));
    ]
