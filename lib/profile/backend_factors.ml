(** Per-backend cost factors.

    A sharded topology puts shards behind different (simulated) network
    latencies, so one global factor set misprices per-shard transfers.
    This store keys an independently calibrated {!Tango_cost.Factors.t}
    by the backend's name — the cost-factor handle of
    [Tango_dbms.Backend] — and falls back to the session's base factors
    for backends that have not calibrated yet.

    Domain safety: the table is guarded by the instance's
    {!Tango_obs.Dsync} lock ([base] is a read-only closure). *)

open Tango_cost
module Dsync = Tango_obs.Dsync

type t = {
  base : unit -> Factors.t;  (** fallback (the session's global factors) *)
  lock : Dsync.lock;
  tbl : (string, Factors.t) Hashtbl.t;
}

let create ~base = { base; lock = Dsync.named_lock "profile.backend_factors"; tbl = Hashtbl.create 8 }

let set t name factors =
  Dsync.protect t.lock (fun () -> Hashtbl.replace t.tbl name factors)

let get t name =
  match Dsync.protect t.lock (fun () -> Hashtbl.find_opt t.tbl name) with
  | Some f -> f
  | None -> t.base ()

let known t name = Dsync.protect t.lock (fun () -> Hashtbl.mem t.tbl name)

let names t =
  Dsync.protect t.lock (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [])
  |> List.sort compare

let clear t = Dsync.protect t.lock (fun () -> Hashtbl.reset t.tbl)
