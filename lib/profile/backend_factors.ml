(** Per-backend cost factors.

    A sharded topology puts shards behind different (simulated) network
    latencies, so one global factor set misprices per-shard transfers.
    This store keys an independently calibrated {!Tango_cost.Factors.t}
    by the backend's name — the cost-factor handle of
    [Tango_dbms.Backend] — and falls back to the session's base factors
    for backends that have not calibrated yet. *)

open Tango_cost

type t = {
  base : unit -> Factors.t;  (** fallback (the session's global factors) *)
  tbl : (string, Factors.t) Hashtbl.t;
}

let create ~base = { base; tbl = Hashtbl.create 8 }

let set t name factors = Hashtbl.replace t.tbl name factors

let get t name =
  match Hashtbl.find_opt t.tbl name with Some f -> f | None -> t.base ()

let known t name = Hashtbl.mem t.tbl name

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let clear t = Hashtbl.reset t.tbl
