(** EXPLAIN ANALYZE for middleware plans.

    Walks the optimized physical plan and the measured operator trace
    (grafted by [Exec_plan.to_trace]) together, pairing every
    middleware-resident operator with its execution record and producing
    estimated-vs-actual cardinality, bytes, cost, page reads and client
    round trips, plus the per-operator q-error — the standard
    misestimation metric [max(est/act, act/est)].

    The report also carries refit observations ({!Tango_cost.Calibrate.
    observation}): per-operator measured times attributed to the cost
    factor of the operator's formula, ready for the adaptive
    recalibration loop ({!Adapt}). *)

open Tango_stats
open Tango_cost
open Tango_volcano

val q_error : ?floor:float -> est:float -> actual:float -> unit -> float
(** [max(est/act, act/est)] with both sides floored at [floor]
    (default 1.0); always >= 1, and 1 on a perfect estimate. *)

type record = {
  operator : string;  (** algorithm name, e.g. ["TRANSFER^M"] *)
  depth : int;  (** 0 at the plan root *)
  fingerprint : string;  (** plan-fragment fingerprint of this subtree *)
  est_rows : float;
  act_rows : int;
  est_bytes : float;
  act_bytes : float;
  est_us : float;  (** inclusive estimated cost (children included) *)
  act_us : float;  (** inclusive measured wall time *)
  est_self_us : float;  (** this operator only *)
  act_self_us : float;
  est_pages : float;  (** DBMS pages; rough, nonzero only for transfers *)
  act_pages : int;
  est_roundtrips : float;  (** client round trips; transfers only *)
  act_roundtrips : int;
  q_rows : float;  (** cardinality q-error *)
  q_cost : float;  (** cost q-error (inclusive us, floored at 1) *)
}

type report = {
  records : record list;  (** preorder, depth-first *)
  fingerprint : string;  (** whole-plan fingerprint *)
  mean_q_rows : float;
  mean_q_cost : float;
  max_q_rows : float;
  max_q_cost : float;
  total_est_us : float;
  total_act_us : float;
  observations : Calibrate.observation list;
}

val analyze :
  stats_env:Derive.env ->
  factors:Factors.t ->
  ?row_prefetch:int ->
  ?page_size:int ->
  Physical.plan ->
  Tango_obs.Trace.span ->
  report
(** Pair [plan] with the operator trace produced by executing it
    ([Exec_plan.to_trace]).  [factors] are the cost factors the plan was
    costed with — used to strip known output/sort terms from measured
    times when attributing them to a single coefficient.  [row_prefetch]
    (default 10) feeds the round-trip estimate; [page_size] (default
    4096) the page estimate. *)

val render : Format.formatter -> report -> unit
(** The annotated plan: one line per operator with estimated vs actual
    rows, time, and q-errors, indented by plan depth. *)

val to_string : report -> string
val to_json : report -> Tango_obs.Json.t
