(** Adaptive recalibration — the paper's "adaptable" claim, closed-loop.

    When the feedback store shows that the operators priced by some cost
    factor are misestimated past a q-error threshold, the affected
    coefficients are refitted from the observed executions
    ({!Tango_cost.Calibrate.refit}) and installed into the session's
    factors, so subsequent optimizer runs plan with corrected costs. *)

open Tango_cost

type params = {
  q_threshold : float;
      (** refit a factor once its operators' mean cost q-error crosses
          this (>= 1; default 1.5) *)
  min_samples : int;  (** observations required before refitting (default 3) *)
}

val default_params : params

val refits : Tango_obs.Counter.t
(** ["profile.cost_refits"]: recalibrations performed. *)

val maybe_refit :
  ?params:params -> Feedback.t -> factors:Factors.t -> string list option
(** Check the store's per-factor q-error aggregates; when any factor
    crosses the threshold with enough samples, refit every such factor
    from the store's observation window, install the new coefficients
    into [factors] (in place), clear the window, and return the refitted
    names.  [None] when no adaptation was warranted. *)
