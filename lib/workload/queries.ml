(** The paper's four experiment queries (Section 5.2), both as temporal SQL
    for the full middleware pipeline and as hand-built plan trees matching
    the plan alternatives each figure compares.

    Plan trees are middleware-rooted operator trees accepted by
    {!Tango_core.Middleware.run_fixed}; the experiments time them over
    varying data, exactly as the paper varies relation sizes and selection
    periods. *)

open Tango_rel
open Tango_sql
open Tango_algebra
open Tango_temporal

let col ?q c = Ast.Col (q, c)
let date s = Ast.Lit (Value.Date (Chronon.of_string s))
let ( &&& ) a b = Ast.Binop (Ast.And, a, b)
let lt a b = Ast.Binop (Ast.Lt, a, b)
let gt a b = Ast.Binop (Ast.Gt, a, b)
let eq a b = Ast.Binop (Ast.Eq, a, b)

let scan ?alias table = Op.scan ?alias table Uis.position_schema
let scan_emp ?alias table = Op.scan ?alias table Uis.employee_schema

(* ------------------------------------------------------------------ *)
(* Query 1: temporal aggregation (Figures 7 and 8)                       *)
(* ------------------------------------------------------------------ *)

let q1_sql =
  "VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY PosID \
   ORDER BY PosID"

let q1_order = [ Order.asc "PosID" ]

let q1_taggr arg =
  Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ] arg

let q1_sort_order = [ Order.asc "POSITION.PosID"; Order.asc "POSITION.T1" ]

(** Plan 1: sort in the DBMS, temporal aggregation in the middleware. *)
let q1_plan1 ~position () =
  q1_taggr (Op.to_mw (Op.sort q1_sort_order (scan position)))

(** Plan 2: transfer, then sort and aggregate in the middleware. *)
let q1_plan2 ~position () =
  q1_taggr (Op.sort q1_sort_order (Op.to_mw (scan position)))

(** Plan 3: everything in the DBMS (temporal aggregation as SQL). *)
let q1_plan3 ~position () = Op.to_mw (q1_taggr (scan position))

let q1_plans ~position () =
  [ ("plan1 sortD+taggrM", q1_plan1 ~position ());
    ("plan2 sortM+taggrM", q1_plan2 ~position ());
    ("plan3 all-DBMS", q1_plan3 ~position ()) ]

(* ------------------------------------------------------------------ *)
(* Query 2: aggregation + temporal join with selections (Figs 9, 10)     *)
(* ------------------------------------------------------------------ *)

let q2_sql ~period_end =
  Printf.sprintf
    "VALIDTIME SELECT A.PosID AS PosID, B.EmpName AS EmpName, A.CNT AS CNT \
     FROM (VALIDTIME SELECT PosID, COUNT(*) AS CNT FROM POSITION GROUP BY \
     PosID) A, POSITION B WHERE A.PosID = B.PosID AND B.PayRate > 10 AND \
     B.T1 < DATE '%s' AND B.T2 > DATE '1983-01-01' ORDER BY PosID"
    period_end

let q2_order = [ Order.asc "PosID" ]

(* Window + pay-rate selection on the displayed POSITION tuples (side B). *)
let q2_sel_b ~period_end =
  gt (col "PayRate") (Ast.Lit (Value.Float 10.0))
  &&& lt (col "T1") (date period_end)
  &&& gt (col "T2") (date "1983-01-01")

(* Window-only selection used to reduce the aggregation argument (side A);
   not needed for correctness, but it shrinks the argument (paper's
   Plan 1 vs Plan 5 discussion). *)
let q2_sel_a ~period_end =
  lt (col "T1") (date period_end) &&& gt (col "T2") (date "1983-01-01")

let q2_taggr arg =
  Op.temporal_aggregate [ "A.PosID" ] [ Op.count_star "CNT" ] arg

let q2_tjoin_pred = eq (col ~q:"A" "PosID") (col ~q:"B" "PosID")

(* Finalize: the query "considers the time period" [1983-01-01, period_end),
   so result periods are clipped to that window (and empty clips dropped).
   This is also what makes reducing the aggregation argument (Plan 1 vs
   Plan 5) sound: tuples outside the window can neither bound nor cover any
   constant interval that survives the clip. *)
let q2_finalize ~period_end tjoin =
  let w_start = date "1983-01-01" and w_end = date period_end in
  Op.project
    [ (col ~q:"A" "PosID", "PosID"); (col ~q:"B" "EmpName", "EmpName");
      (col "CNT", "CNT");
      (Ast.Greatest [ col "T1"; w_start ], "T1");
      (Ast.Least [ col "T2"; w_end ], "T2") ]
    (Op.select (lt (col "T1") w_end &&& gt (col "T2") w_start) tjoin)

(* Aggregation in the middleware over a (possibly reduced) argument. *)
let q2_agg_mw ~position ~reduce ~period_end =
  let a = scan ~alias:"A" position in
  let a = if reduce then Op.select (q2_sel_a ~period_end) a else a in
  q2_taggr
    (Op.to_mw (Op.sort [ Order.asc "A.PosID"; Order.asc "A.T1" ] a))

let q2_b_db ~position ~period_end =
  Op.sort [ Order.asc "B.PosID" ]
    (Op.select (q2_sel_b ~period_end) (scan ~alias:"B" position))

(** Plan 1: TAGGR in MW (with reduced argument), temporal join, projection
    and sort back in the DBMS. *)
let q2_plan1 ~position ~period_end () =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ]
       (q2_finalize ~period_end
          (Op.temporal_join q2_tjoin_pred
             (Op.to_db (q2_agg_mw ~position ~reduce:true ~period_end))
             (Op.select (q2_sel_b ~period_end) (scan ~alias:"B" position)))))

(** Plan 2: TAGGR and temporal join in MW; B sorted and filtered in the
    DBMS. *)
let q2_plan2 ~position ~period_end () =
  q2_finalize ~period_end
    (Op.temporal_join q2_tjoin_pred
       (q2_agg_mw ~position ~reduce:true ~period_end)
       (Op.to_mw (q2_b_db ~position ~period_end)))

(** Plan 3: also sorting of B in MW. *)
let q2_plan3 ~position ~period_end () =
  q2_finalize ~period_end
    (Op.temporal_join q2_tjoin_pred
       (q2_agg_mw ~position ~reduce:true ~period_end)
       (Op.sort [ Order.asc "B.PosID" ]
          (Op.to_mw (Op.select (q2_sel_b ~period_end) (scan ~alias:"B" position)))))

(** Plan 4: selection of B also in MW (the whole base relation is
    transferred). *)
let q2_plan4 ~position ~period_end () =
  q2_finalize ~period_end
    (Op.temporal_join q2_tjoin_pred
       (q2_agg_mw ~position ~reduce:true ~period_end)
       (Op.sort [ Order.asc "B.PosID" ]
          (Op.select (q2_sel_b ~period_end) (Op.to_mw (scan ~alias:"B" position)))))

(** Plan 5: like Plan 1 but without reducing the aggregation argument. *)
let q2_plan5 ~position ~period_end () =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ]
       (q2_finalize ~period_end
          (Op.temporal_join q2_tjoin_pred
             (Op.to_db (q2_agg_mw ~position ~reduce:false ~period_end))
             (Op.select (q2_sel_b ~period_end) (scan ~alias:"B" position)))))

(** Plan 6: everything in the DBMS (temporal aggregation as SQL). *)
let q2_plan6 ~position ~period_end () =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ]
       (q2_finalize ~period_end
          (Op.temporal_join q2_tjoin_pred
             (q2_taggr (Op.select (q2_sel_a ~period_end) (scan ~alias:"A" position)))
             (Op.select (q2_sel_b ~period_end) (scan ~alias:"B" position)))))

let q2_plans ~position ~period_end () =
  [ ("plan1 taggrM", q2_plan1 ~position ~period_end ());
    ("plan2 +tjoinM", q2_plan2 ~position ~period_end ());
    ("plan3 +sortM", q2_plan3 ~position ~period_end ());
    ("plan4 +filterM", q2_plan4 ~position ~period_end ());
    ("plan5 no-reduce", q2_plan5 ~position ~period_end ());
    ("plan6 all-DBMS", q2_plan6 ~position ~period_end ()) ]

(* ------------------------------------------------------------------ *)
(* Query 3: temporal self-join (Figure 11a)                              *)
(* ------------------------------------------------------------------ *)

let q3_sql ~start_bound =
  Printf.sprintf
    "VALIDTIME SELECT A.PosID AS PosID, A.EmpName AS E1, B.EmpName AS E2 \
     FROM POSITION A, POSITION B WHERE A.PosID = B.PosID AND A.EmpID < \
     B.EmpID AND A.T1 < DATE '%s' AND B.T1 < DATE '%s' ORDER BY PosID"
    start_bound start_bound

let q3_order = [ Order.asc "PosID" ]

let q3_pred =
  eq (col ~q:"A" "PosID") (col ~q:"B" "PosID")
  &&& lt (col ~q:"A" "EmpID") (col ~q:"B" "EmpID")

let q3_project tjoin =
  Op.project
    [ (col ~q:"A" "PosID", "PosID"); (col ~q:"A" "EmpName", "E1");
      (col ~q:"B" "EmpName", "E2"); (col "T1", "T1"); (col "T2", "T2") ]
    tjoin

let q3_sel alias ~position ~start_bound =
  Op.select (lt (col "T1") (date start_bound)) (scan ~alias position)

(** Plan 1: everything in the DBMS. *)
let q3_plan1 ~position ~start_bound () =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ]
       (q3_project
          (Op.temporal_join q3_pred
             (q3_sel "A" ~position ~start_bound)
             (q3_sel "B" ~position ~start_bound))))

(** Plan 2: temporal join in the middleware. *)
let q3_plan2 ~position ~start_bound () =
  q3_project
    (Op.temporal_join q3_pred
       (Op.to_mw (Op.sort [ Order.asc "A.PosID" ] (q3_sel "A" ~position ~start_bound)))
       (Op.to_mw (Op.sort [ Order.asc "B.PosID" ] (q3_sel "B" ~position ~start_bound))))

let q3_plans ~position ~start_bound () =
  [ ("plan1 all-DBMS", q3_plan1 ~position ~start_bound ());
    ("plan2 tjoinM", q3_plan2 ~position ~start_bound ()) ]

(* ------------------------------------------------------------------ *)
(* Query 4: regular join with EMPLOYEE (Figure 11b)                      *)
(* ------------------------------------------------------------------ *)

let q4_sql =
  "SELECT P.PosID AS PosID, E.Name AS Name, E.Address AS Address FROM \
   POSITION P, EMPLOYEE E WHERE P.EmpID = E.EmpID ORDER BY PosID"

let q4_order = [ Order.asc "PosID" ]

let q4_pred = eq (col ~q:"P" "EmpID") (col ~q:"E" "EmpID")

let q4_project join =
  Op.project
    [ (col ~q:"P" "PosID", "PosID"); (col ~q:"E" "Name", "Name");
      (col ~q:"E" "Address", "Address") ]
    join

(* Reduce EMPLOYEE to the needed columns before moving it anywhere. *)
let q4_emp_slim ~employee =
  Op.project
    [ (col ~q:"E" "EmpID", "E.EmpID"); (col ~q:"E" "Name", "E.Name");
      (col ~q:"E" "Address", "E.Address") ]
    (scan_emp ~alias:"E" employee)

(** Plan 1: sort and merge join in the middleware. *)
let q4_plan1 ~position ~employee () =
  Op.sort [ Order.asc "PosID" ]
    (q4_project
       (Op.join q4_pred
          (Op.to_mw (Op.sort [ Order.asc "P.EmpID" ] (scan ~alias:"P" position)))
          (Op.to_mw (Op.sort [ Order.asc "E.EmpID" ] (q4_emp_slim ~employee)))))

(** Plans 2/3: join in the DBMS (nested loop vs sort-merge is forced via
    {!Tango_dbms.Database.set_join_method}, the Oracle-hint stand-in).
    The join is over the base tables so the DBMS can use its EmpID index
    for the nested-loop plan, as Oracle would. *)
let q4_plan_dbms ~position ~employee () =
  Op.to_mw
    (Op.sort [ Order.asc "PosID" ]
       (q4_project
          (Op.join q4_pred (scan ~alias:"P" position)
             (scan_emp ~alias:"E" employee))))

(* ------------------------------------------------------------------ *)
(* The whole workload, for tools that sweep it (tango_cli check --all)  *)
(* ------------------------------------------------------------------ *)

(** Named temporal-SQL texts of the four workload queries, with default
    parameters matching the experiments. *)
let workload : (string * string) list =
  [
    ("q1", q1_sql);
    ("q2", q2_sql ~period_end:"1996-01-01");
    ("q3", q3_sql ~start_bound:"1996-01-01");
    ("q4", q4_sql);
  ]
