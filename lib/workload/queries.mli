(** The paper's four experiment queries (Section 5.2), both as temporal
    SQL for the full middleware pipeline and as hand-built plan trees
    matching the plan alternatives each figure compares.

    Plan trees are middleware-rooted operator trees accepted by
    {!Tango_core.Middleware.run_fixed}; the experiments time them over
    varying data, exactly as the paper varies relation sizes and
    selection periods. *)

open Tango_rel
open Tango_sql
open Tango_algebra

(** {1 Query 1: temporal aggregation (Figures 7 and 8)} *)

val q1_sql : string
val q1_order : Order.key list
val q1_taggr : Op.t -> Op.t
val q1_sort_order : Order.key list

val q1_plan1 : position:string -> unit -> Op.t
(** Sort in the DBMS, temporal aggregation in the middleware. *)

val q1_plan2 : position:string -> unit -> Op.t
(** Transfer, then sort and aggregate in the middleware. *)

val q1_plan3 : position:string -> unit -> Op.t
(** Everything in the DBMS (temporal aggregation as SQL). *)

val q1_plans : position:string -> unit -> (string * Op.t) list

(** {1 Query 2: aggregation + temporal join with selections (Figs 9, 10)} *)

val q2_sql : period_end:string -> string
val q2_order : Order.key list
val q2_sel_b : period_end:string -> Ast.expr
val q2_sel_a : period_end:string -> Ast.expr
val q2_taggr : Op.t -> Op.t
val q2_tjoin_pred : Ast.expr
val q2_finalize : period_end:string -> Op.t -> Op.t
val q2_agg_mw : position:string -> reduce:bool -> period_end:string -> Op.t
val q2_b_db : position:string -> period_end:string -> Op.t
val q2_plan1 : position:string -> period_end:string -> unit -> Op.t
val q2_plan2 : position:string -> period_end:string -> unit -> Op.t
val q2_plan3 : position:string -> period_end:string -> unit -> Op.t
val q2_plan4 : position:string -> period_end:string -> unit -> Op.t
val q2_plan5 : position:string -> period_end:string -> unit -> Op.t
val q2_plan6 : position:string -> period_end:string -> unit -> Op.t

val q2_plans :
  position:string -> period_end:string -> unit -> (string * Op.t) list

(** {1 Query 3: temporal self-join (Figure 11a)} *)

val q3_sql : start_bound:string -> string
val q3_order : Order.key list
val q3_pred : Ast.expr
val q3_project : Op.t -> Op.t
val q3_sel : string -> position:string -> start_bound:string -> Op.t
val q3_plan1 : position:string -> start_bound:string -> unit -> Op.t
val q3_plan2 : position:string -> start_bound:string -> unit -> Op.t

val q3_plans :
  position:string -> start_bound:string -> unit -> (string * Op.t) list

(** {1 Query 4: regular join with EMPLOYEE (Figure 11b)} *)

val q4_sql : string
val q4_order : Order.key list
val q4_pred : Ast.expr
val q4_project : Op.t -> Op.t
val q4_emp_slim : employee:string -> Op.t
val q4_plan1 : position:string -> employee:string -> unit -> Op.t
val q4_plan_dbms : position:string -> employee:string -> unit -> Op.t

(** {1 The whole workload} *)

val workload : (string * string) list
(** Named temporal-SQL texts of the four workload queries, with default
    parameters matching the experiments. *)
