(** Synthetic stand-in for the University Information System dataset
    (TIMECENTER CD-1) used by the paper's experiments.

    Deterministic generators matching the published shapes: EMPLOYEE
    (49,972 × 31 attributes, ≈276 B/tuple), POSITION (83,857 × 8
    attributes, ≈80 B/tuple) with the reported time skew (~65 % of periods
    start in 1995 or later), and the eight POSITION size variants. *)

open Tango_rel

val employee_full_cardinality : int
val position_full_cardinality : int
val position_variant_cardinalities : int list

val position_schema : Schema.t
val employee_schema : Schema.t

val position : ?n:int -> ?employees:int -> unit -> Relation.t
(** [n] tuples (default: the full 83,857); EmpID references range over
    [1..employees]. *)

val employee : ?n:int -> unit -> Relation.t

val load :
  ?scale:float ->
  ?histograms:[ `All | `Cols of string list | `None ] ->
  Tango_dbms.Database.t ->
  unit
(** Load a scaled UIS database (POSITION, EMPLOYEE with a clustered EmpID
    index) and ANALYZE everything. *)

val load_position_variant :
  ?histograms:[ `All | `Cols of string list | `None ] ->
  Tango_dbms.Database.t ->
  table:string ->
  n:int ->
  unit

val load_sharded :
  ?scale:float ->
  ?histograms:[ `All | `Cols of string list | `None ] ->
  ?roundtrip_spins:int list ->
  shards:int ->
  unit ->
  Tango_dbms.Topology.t
(** Load a scaled UIS database over [shards] in-process backends:
    POSITION range-partitioned on its period start [T1] at the data's
    quantiles; EMPLOYEE (with its clustered EmpID index) replicated to
    every backend.  Backends are named [shard0], [shard1], …;
    [roundtrip_spins] gives each a simulated per-round-trip latency. *)
