(** Synthetic stand-in for the University Information System dataset
    (TIMECENTER CD-1) the paper's experiments use.

    The generators are deterministic and match the published shape:
    - EMPLOYEE: 49,972 tuples, 31 attributes, ≈276 bytes/tuple (13.8 MB);
    - POSITION: 83,857 tuples, 8 attributes, ≈80 bytes/tuple (6.7 MB), with
      the time skew the paper reports: most periods fall after 1992 and
      about 65 % start in 1995 or later;
    - eight POSITION size variants (8k, 17k, …, 74k) drawn as prefixes of
      the full relation, as in Section 5.1.

    A [scale] factor shrinks everything proportionally so experiments run
    at laptop scale while preserving shapes. *)

open Tango_rel
open Tango_temporal

let employee_full_cardinality = 49_972
let position_full_cardinality = 83_857
let position_variant_cardinalities =
  [ 8_000; 17_000; 27_000; 36_000; 46_000; 55_000; 64_000; 74_000 ]

(* Deterministic pseudo-random stream (LCG). *)
type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) land 0x3FFFFFFF }

let next r bound =
  r.state <- ((r.state * 1103515245) + 12345) land 0x3FFFFFFF;
  (* use the high bits: the low bits of a power-of-two LCG are periodic *)
  if bound <= 0 then 0 else (r.state lsr 13) mod bound

let pick r xs = List.nth xs (next r (List.length xs))

let first_names =
  [ "Tom"; "Jane"; "Maria"; "John"; "Wei"; "Anna"; "Luis"; "Kate"; "Omar";
    "Ivan"; "Mia"; "Noah"; "Emma"; "Liam"; "Sofia"; "Hugo" ]

let last_names =
  [ "Smith"; "Jensen"; "Garcia"; "Chen"; "Muller"; "Rossi"; "Novak";
    "Dubois"; "Silva"; "Kim"; "Lopez"; "Brown"; "Olsen"; "Petrov" ]

let departments =
  [ "CS"; "MATH"; "PHYS"; "CHEM"; "BIO"; "HIST"; "ECON"; "LAW"; "MED"; "ART" ]

let statuses = [ "FT"; "PT"; "TEMP"; "ADJ" ]

(* ------------------------------------------------------------------ *)
(* POSITION                                                              *)
(* ------------------------------------------------------------------ *)

let position_schema =
  Schema.make
    [
      ("PosID", Value.TInt); ("EmpID", Value.TInt); ("EmpName", Value.TStr);
      ("Dept", Value.TStr); ("PayRate", Value.TFloat); ("Status", Value.TStr);
      ("T1", Value.TDate); ("T2", Value.TDate);
    ]

let day y m d = Chronon.of_ymd ~y ~m ~d

(* Hiring skew: 35 % of periods start uniformly in 1980–1994, 65 % in
   1995–2000 (the paper: "about 65 % of the POSITION tuples have
   time-periods starting at 1995 or later"; "most of the POSITION data is
   concentrated after 1992"). *)
let position_start r =
  if next r 100 < 65 then
    day 1995 1 1 + next r (day 2000 6 1 - day 1995 1 1)
  else day 1980 1 1 + next r (day 1995 1 1 - day 1980 1 1)

(** Generate [n] POSITION tuples ([n] defaults to the full 83,857). *)
let position ?(n = position_full_cardinality) ?(employees = employee_full_cardinality)
    () : Relation.t =
  let r = rng 20010521 in
  let distinct_positions = max 4 (n / 40) in
  let tuples =
    List.init n (fun _i ->
        let pos_id = 1 + next r distinct_positions in
        let emp_id = 1 + next r (max 1 employees) in
        let name = pick r first_names ^ " " ^ pick r last_names in
        let dept = pick r departments in
        let pay = 5.0 +. (float_of_int (next r 2500) /. 100.0) in
        let status = pick r statuses in
        let t1 = position_start r in
        let dur = 30 + next r 1470 in
        let t2 = min (t1 + dur) (day 2000 12 31) in
        let t2 = if t2 <= t1 then t1 + 1 else t2 in
        Tuple.of_list
          [
            Value.Int pos_id; Value.Int emp_id; Value.Str name;
            Value.Str dept; Value.Float pay; Value.Str status;
            Value.Date t1; Value.Date t2;
          ])
  in
  Relation.of_list position_schema tuples

(* ------------------------------------------------------------------ *)
(* EMPLOYEE                                                              *)
(* ------------------------------------------------------------------ *)

(** 31 attributes: identity, contact and HR fields plus rating/flag filler
    columns, sized to the published 276-byte average. *)
let employee_schema =
  Schema.make
    ([
       ("EmpID", Value.TInt); ("Name", Value.TStr); ("Address", Value.TStr);
       ("City", Value.TStr); ("State", Value.TStr); ("Zip", Value.TStr);
       ("Phone", Value.TStr); ("Email", Value.TStr); ("Dept", Value.TStr);
       ("Title", Value.TStr); ("Grade", Value.TInt); ("Salary", Value.TFloat);
       ("HireDate", Value.TDate); ("BirthDate", Value.TDate);
       ("Gender", Value.TStr); ("Citizen", Value.TStr); ("Office", Value.TStr);
       ("Fax", Value.TStr); ("Super", Value.TInt);
     ]
    @ List.init 12 (fun i -> ("Attr" ^ string_of_int (i + 1), Value.TStr)))

let employee ?(n = employee_full_cardinality) () : Relation.t =
  let r = rng 19990101 in
  let tuples =
    List.init n (fun i ->
        let emp_id = i + 1 in
        let name = pick r first_names ^ " " ^ pick r last_names in
        let s len tag = Value.Str (Printf.sprintf "%s%0*d" tag len (next r 100000)) in
        Tuple.of_list
          ([
             Value.Int emp_id; Value.Str name;
             Value.Str (Printf.sprintf "%d Univ Ave" (next r 9999));
             s 6 "City"; Value.Str (pick r [ "AZ"; "CA"; "NY"; "TX"; "WA" ]);
             s 5 "Z"; s 7 "555"; Value.Str (String.lowercase_ascii name ^ "@u.edu");
             Value.Str (pick r departments); s 6 "Title";
             Value.Int (1 + next r 9);
             Value.Float (20000.0 +. float_of_int (next r 80000));
             Value.Date (day 1975 1 1 + next r 9000);
             Value.Date (day 1940 1 1 + next r 14000);
             Value.Str (pick r [ "F"; "M" ]); Value.Str (pick r [ "Y"; "N" ]);
             s 4 "Bldg"; s 7 "556"; Value.Int (1 + next r 500);
           ]
          @ List.init 12 (fun j -> s (1 + ((i + j) mod 3)) "v")))
  in
  Relation.of_list employee_schema tuples

(* ------------------------------------------------------------------ *)
(* Database setup                                                        *)
(* ------------------------------------------------------------------ *)

(** Load a scaled UIS database: POSITION and EMPLOYEE, plus ANALYZE.
    [scale] multiplies the published cardinalities. *)
let load ?(scale = 1.0) ?histograms (db : Tango_dbms.Database.t) : unit =
  let n_pos =
    max 10 (int_of_float (scale *. float_of_int position_full_cardinality))
  in
  let n_emp =
    max 10 (int_of_float (scale *. float_of_int employee_full_cardinality))
  in
  Tango_dbms.Database.load_relation db "POSITION" (position ~n:n_pos ~employees:n_emp ());
  Tango_dbms.Database.load_relation db "EMPLOYEE" (employee ~n:n_emp ());
  (* EMPLOYEE is keyed by EmpID; the index enables the DBMS's index
     nested-loop join (the paper's fast Query 4 plan). *)
  Tango_dbms.Database.create_index db ~clustered:true "EMPLOYEE" "EmpID";
  Tango_dbms.Database.analyze_all db ?histograms ()

(** Load one POSITION size variant under the given table name. *)
let load_position_variant ?histograms db ~table ~n : unit =
  Tango_dbms.Database.load_relation db table (position ~n ());
  ignore (Tango_dbms.Database.analyze db ?histograms table)

(* ------------------------------------------------------------------ *)
(* Sharded setup                                                         *)
(* ------------------------------------------------------------------ *)

(** Load a scaled UIS database range-partitioned over [shards] in-process
    backends: POSITION is sliced on its period start [T1] at the data's
    quantiles (so the published time skew still yields even shards), and
    EMPLOYEE — with its clustered EmpID index — is replicated to every
    backend.  [roundtrip_spins] simulates per-backend network latencies.
    The result is ready for {!Tango_dbms.Topology} consumers. *)
let load_sharded ?(scale = 1.0) ?histograms ?(roundtrip_spins = [])
    ~shards () : Tango_dbms.Topology.t =
  if shards < 1 then invalid_arg "Uis.load_sharded: shards must be >= 1";
  let n_pos =
    max 10 (int_of_float (scale *. float_of_int position_full_cardinality))
  in
  let n_emp =
    max 10 (int_of_float (scale *. float_of_int employee_full_cardinality))
  in
  let pos = position ~n:n_pos ~employees:n_emp () in
  let emp = employee ~n:n_emp () in
  let t1_ix = Schema.index position_schema "T1" in
  let chronon_of t =
    match Tuple.get t t1_ix with
    | Value.Date c | Value.Int c -> c
    | _ -> invalid_arg "Uis.load_sharded: non-chronon T1"
  in
  let starts = Array.map chronon_of (Relation.tuples pos) in
  let bounds = Tango_dbms.Topology.quantile_bounds starts shards in
  let in_bounds (b : Tango_dbms.Topology.bounds) c =
    (match b.Tango_dbms.Topology.lo with None -> true | Some lo -> c >= lo)
    && match b.Tango_dbms.Topology.hi with None -> true | Some hi -> c < hi
  in
  let spin_of i = List.nth_opt roundtrip_spins i in
  let shard_list =
    List.mapi
      (fun i b ->
        let db = Tango_dbms.Database.create () in
        let slice =
          Relation.of_list position_schema
            (Array.to_list (Relation.tuples pos)
            |> List.filter (fun t -> in_bounds b (chronon_of t)))
        in
        Tango_dbms.Database.load_relation db "POSITION" slice;
        Tango_dbms.Database.load_relation db "EMPLOYEE" emp;
        Tango_dbms.Database.create_index db ~clustered:true "EMPLOYEE" "EmpID";
        Tango_dbms.Database.analyze_all db ?histograms ();
        let backend =
          Tango_dbms.Backend.in_process
            ~name:(Printf.sprintf "shard%d" i)
            ?roundtrip_spin:(spin_of i) db
        in
        (backend, b))
      bounds
  in
  Tango_dbms.Topology.create ~partitioned:("POSITION", "T1") shard_list
