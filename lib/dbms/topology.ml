(** Backend topologies.  See the interface for the data-placement
    contract (one range-partitioned table, everything else replicated). *)

type bounds = { lo : int option; hi : int option }

let unbounded = { lo = None; hi = None }

type t = {
  mutable shard_list : (Backend.t * bounds) list;
  partitioned : (string * string) option;  (** (table, column) *)
  mutable gen : int;
}

let create ?partitioned shards =
  if shards = [] then invalid_arg "Topology.create: no backends";
  { shard_list = shards; partitioned; gen = 0 }

let single backend = create [ (backend, unbounded) ]

let primary t = fst (List.hd t.shard_list)
let backends t = List.map fst t.shard_list
let shards t = t.shard_list
let shard_count t = List.length t.shard_list

let is_sharded t = t.partitioned <> None && shard_count t > 1
let partitioned_table t = t.partitioned

let find t name =
  List.find_map
    (fun (b, _) -> if Backend.name b = name then Some b else None)
    t.shard_list

let generation t = t.gen
let bump_generation t = t.gen <- t.gen + 1

let add_shard t backend bounds =
  t.shard_list <- t.shard_list @ [ (backend, bounds) ];
  bump_generation t

(* Quantile split points: sort the sample and cut at i·|v|/n.  Equal split
   values collapse (a shard may end up empty on pathological samples, which
   is harmless — its bounds select nothing). *)
let quantile_bounds values n =
  if n <= 1 then [ unbounded ]
  else begin
    let v = Array.copy values in
    Array.sort compare v;
    let len = Array.length v in
    let cut i =
      if len = 0 then None else Some v.(min (len - 1) (i * len / n))
    in
    List.init n (fun i ->
        {
          lo = (if i = 0 then None else cut i);
          hi = (if i = n - 1 then None else cut (i + 1));
        })
  end

let close t = List.iter Backend.close (backends t)
