(** The database façade — the "conventional DBMS" that TANGO sits on top of.

    Accepts SQL text (or pre-parsed statements), maintains the catalog, and
    exposes ANALYZE and index DDL.  The middleware accesses it only through
    this module and {!Client}, mirroring the paper's JDBC boundary. *)

open Tango_rel
open Tango_sql

type t = {
  catalog : Catalog.t;
  settings : Executor.settings;
  mutable temp_counter : int;
  mutable schema_generation : int;
}

type result = Rows of Relation.t | Ok_count of int

let create ?pool_pages () =
  {
    catalog = Catalog.create ?pool_pages ();
    settings = Executor.default_settings ();
    temp_counter = 0;
    schema_generation = 0;
  }

let schema_generation db = db.schema_generation

let temp_prefix = "TANGO_TMP_"

let is_temp_table name =
  String.length name >= String.length temp_prefix
  && String.sub name 0 (String.length temp_prefix) = temp_prefix

(* DDL/ANALYZE on real tables advances the generation (plan caches key on
   it); `TRANSFER^D` temp tables come and go on every query and must not. *)
let bump_generation db name =
  if not (is_temp_table name) then
    db.schema_generation <- db.schema_generation + 1

let catalog db = db.catalog
let io_stats db = db.catalog.Catalog.io
let buffer_pool db = db.catalog.Catalog.pool
let settings db = db.settings

(** Force/unforce a join method — the stand-in for Oracle hints used by the
    Query 4 experiment. *)
let set_join_method db m = db.settings.Executor.join_method <- m

let schema_of_defs defs =
  Schema.make
    (List.map (fun d -> (d.Ast.col_name, d.Ast.col_type)) defs)

(** Execute a parsed statement. *)
let execute_ast db (stmt : Ast.statement) : result =
  match stmt with
  | Ast.Query q ->
      Rows (Executor.run_query ~settings:db.settings db.catalog q)
  | Ast.Create_table (name, defs) ->
      ignore (Catalog.add db.catalog name (schema_of_defs defs));
      bump_generation db name;
      Ok_count 0
  | Ast.Drop_table name ->
      Catalog.drop db.catalog name;
      bump_generation db name;
      Ok_count 0
  | Ast.Insert (name, rows) ->
      let table = Catalog.find db.catalog name in
      let schema = Tango_storage.Heap_file.schema table.Catalog.file in
      (* Literal coercion to declared column types (INT literals are valid
         DATE/FLOAT values, as in SQL). *)
      let coerce i (v : Value.t) =
        match (Schema.dtype_at schema i, v) with
        | Value.TDate, Value.Int d -> Value.Date d
        | Value.TFloat, Value.Int x -> Value.Float (float_of_int x)
        | _, v -> v
      in
      List.iter
        (fun row ->
          if List.length row <> Schema.arity schema then
            raise
              (Executor.Sql_error
                 (Printf.sprintf "INSERT arity mismatch for %s" name));
          ignore
            (Tango_storage.Heap_file.append table.Catalog.file
               (Tuple.of_list (List.mapi coerce row))))
        rows;
      Ok_count (List.length rows)

(** Execute SQL text. *)
let execute db sql : result = execute_ast db (Parser.statement sql)

(** Run a query and return its rows; raises on DDL. *)
let query db sql : Relation.t =
  match execute db sql with
  | Rows r -> r
  | Ok_count _ -> raise (Executor.Sql_error "expected a query")

let query_ast db q : Relation.t =
  Executor.run_query ~settings:db.settings db.catalog q

(** Create a table directly from a schema (bypassing SQL DDL). *)
let create_table db name schema =
  ignore (Catalog.add db.catalog name schema);
  bump_generation db name

let drop_table db name =
  Catalog.drop db.catalog name;
  bump_generation db name

let table_exists db name = Catalog.mem db.catalog name

let table_schema db name =
  Tango_storage.Heap_file.schema (Catalog.find db.catalog name).Catalog.file

let table_cardinality db name =
  Tango_storage.Heap_file.tuple_count (Catalog.find db.catalog name).Catalog.file

(** Bulk-load a relation into an existing table (conventional path: one
    append per tuple). *)
let load db name (r : Relation.t) =
  let table = Catalog.find db.catalog name in
  Relation.iter
    (fun t -> ignore (Tango_storage.Heap_file.append table.Catalog.file t))
    r

(** Create-and-load in one step, used by workload setup. *)
let load_relation db name (r : Relation.t) =
  create_table db name (Schema.unqualify (Relation.schema r));
  load db name r

(** Fresh temporary-table name; the paper notes transfer tables "must be
    unique ... and dropped at the end of the query". *)
let fresh_temp_name db =
  db.temp_counter <- db.temp_counter + 1;
  Printf.sprintf "TANGO_TMP_%d" db.temp_counter

let create_index db ?(clustered = false) table attr =
  ignore (Catalog.add_index db.catalog table ~clustered attr);
  bump_generation db table

(** ANALYZE a table (see {!Analyze.run}).  [bump:false] is for the
    middleware's internal statistics collection: it re-runs ANALYZE as an
    implementation detail and must not advance the schema generation,
    which would flush plan caches keyed on it. *)
let analyze db ?histograms ?buckets ?(bump = true) name : Stat.table_stats =
  let r = Analyze.run ?histograms ?buckets (Catalog.find db.catalog name) in
  if bump then bump_generation db name;
  r

let analyze_all db ?histograms ?buckets () =
  List.iter
    (fun name -> ignore (analyze db ?histograms ?buckets name))
    (Catalog.table_names db.catalog)

let stats_of db name = (Catalog.find db.catalog name).Catalog.stats
