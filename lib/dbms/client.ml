(** The middleware⇄DBMS boundary — the JDBC stand-in.

    Everything the middleware moves across this boundary pays real
    marshalling work: each tuple is serialized into a wire buffer and parsed
    back on the other side.  Fetches are batched by a row-prefetch setting
    (the paper notes Oracle JDBC's row-prefetch affects `TRANSFER^M`
    performance); each round trip additionally costs a fixed CPU spin that
    stands in for network latency, so small prefetch values hurt, as they do
    over a real wire. *)

open Tango_rel
open Tango_sql

type t = {
  db : Database.t;
  mutable row_prefetch : int;  (** tuples fetched per round trip *)
  mutable roundtrip_spin : int;  (** latency stand-in: spin iterations *)
  mutable roundtrips : int;  (** counter: round trips performed *)
  mutable tuples_shipped : int;  (** counter: tuples across the boundary *)
  mutable bytes_shipped : int;  (** counter: wire bytes across the boundary *)
}

(* process-wide mirrors of the boundary counters (see Tango_obs) *)
let c_roundtrips = Tango_obs.Counter.make "client.roundtrips"
let c_tuples_shipped = Tango_obs.Counter.make "client.tuples_shipped"
let c_bytes_shipped = Tango_obs.Counter.make "client.bytes_shipped"
let c_queries = Tango_obs.Counter.make "client.queries"
let c_bulk_loads = Tango_obs.Counter.make "client.bulk_loads"

let default_row_prefetch = 10 (* Oracle JDBC's historical default *)
let default_roundtrip_spin = 20_000

let connect ?(row_prefetch = default_row_prefetch)
    ?(roundtrip_spin = default_roundtrip_spin) db =
  { db; row_prefetch; roundtrip_spin; roundtrips = 0; tuples_shipped = 0;
    bytes_shipped = 0 }

let database c = c.db
let set_row_prefetch c n = c.row_prefetch <- max 1 n
let row_prefetch c = c.row_prefetch
let set_roundtrip_spin c n = c.roundtrip_spin <- max 0 n

let reset_counters c =
  c.roundtrips <- 0;
  c.tuples_shipped <- 0;
  c.bytes_shipped <- 0

let roundtrips c = c.roundtrips
let tuples_shipped c = c.tuples_shipped
let bytes_shipped c = c.bytes_shipped

(* The latency stand-in: a data-dependent spin the compiler cannot remove. *)
let spin c =
  c.roundtrips <- c.roundtrips + 1;
  Tango_obs.Counter.incr c_roundtrips;
  let acc = ref 0 in
  for i = 1 to c.roundtrip_spin do
    acc := (!acc + i) land 0xFFFF
  done;
  ignore (Sys.opaque_identity !acc)

(* Ship a batch of tuples through a wire buffer (serialize + deserialize);
   returns the parsed tuples and the wire size in bytes. *)
let ship_batch c (batch : Tuple.t list) : Tuple.t list * int =
  spin c;
  let buf = Buffer.create 4096 in
  List.iter (Tuple.serialize buf) batch;
  let wire = Buffer.contents buf in
  let nbytes = String.length wire in
  c.bytes_shipped <- c.bytes_shipped + nbytes;
  Tango_obs.Counter.add c_bytes_shipped nbytes;
  let pos = ref 0 in
  let parsed =
    List.map
      (fun _ ->
        let t, p = Tuple.deserialize wire !pos in
        pos := p;
        c.tuples_shipped <- c.tuples_shipped + 1;
        Tango_obs.Counter.incr c_tuples_shipped;
        t)
      batch
  in
  (parsed, nbytes)

(** A server-side cursor being drained by the middleware.  Each cursor
    accounts the marshalling work it caused: round trips, tuples and wire
    bytes shipped on its behalf. *)
type cursor = {
  schema : Schema.t;
  mutable pending : Tuple.t list;  (** rows not yet shipped *)
  mutable buffered : Tuple.t list;  (** client-side prefetch buffer *)
  client : t;
  mutable cur_roundtrips : int;
  mutable cur_tuples : int;
  mutable cur_bytes : int;
}

(** Execute a query and open a cursor over its (already computed) result.
    Like a JDBC statement, the rows stream to the client in prefetch-sized
    batches as the cursor is advanced. *)
let cursor_of_relation c rel =
  {
    schema = Relation.schema rel;
    pending = Array.to_list (Relation.tuples rel);
    buffered = [];
    client = c;
    cur_roundtrips = 0;
    cur_tuples = 0;
    cur_bytes = 0;
  }

let execute_query c (sql : string) : cursor =
  Tango_obs.Counter.incr c_queries;
  cursor_of_relation c (Database.query c.db sql)

let execute_query_ast c (q : Ast.query) : cursor =
  Tango_obs.Counter.incr c_queries;
  cursor_of_relation c (Database.query_ast c.db q)

let cursor_schema cur = cur.schema
let cursor_roundtrips cur = cur.cur_roundtrips
let cursor_tuples cur = cur.cur_tuples
let cursor_bytes cur = cur.cur_bytes

(* Ship the next prefetch-sized batch into the client-side buffer.  The
   single refill path shared by [fetch] and [fetch_batch], so the two
   drain styles account identical round trips / tuples / bytes. *)
let refill (cur : cursor) : bool =
  match cur.pending with
  | [] -> false
  | pending ->
      let n = cur.client.row_prefetch in
      let rec take k = function
        | x :: rest when k > 0 ->
            let taken, rem = take (k - 1) rest in
            (x :: taken, rem)
        | rest -> ([], rest)
      in
      let batch, rest = take n pending in
      cur.pending <- rest;
      let shipped, nbytes = ship_batch cur.client batch in
      cur.cur_roundtrips <- cur.cur_roundtrips + 1;
      cur.cur_tuples <- cur.cur_tuples + List.length shipped;
      cur.cur_bytes <- cur.cur_bytes + nbytes;
      cur.buffered <- shipped;
      true

let rec fetch (cur : cursor) : Tuple.t option =
  match cur.buffered with
  | t :: rest ->
      cur.buffered <- rest;
      Some t
  | [] -> if refill cur then fetch cur else None

(** Fetch one prefetch batch: the buffered rows (refilled over the wire if
    the buffer is empty) as an array, or [None] when the cursor is
    exhausted.  One call consumes at most one round trip — exactly the
    accounting [fetch] would do for the same rows. *)
let rec fetch_batch (cur : cursor) : Tuple.t array option =
  match cur.buffered with
  | _ :: _ as buffered ->
      cur.buffered <- [];
      Some (Array.of_list buffered)
  | [] -> if refill cur then fetch_batch cur else None

(** Drain a cursor into a relation (paying all transfer work). *)
let fetch_all (cur : cursor) : Relation.t =
  let rec go acc =
    match fetch_batch cur with
    | None -> Array.concat (List.rev acc)
    | Some b -> go (b :: acc)
  in
  Relation.make cur.schema (go [])

(** Run a non-query statement. *)
let execute_update c (sql : string) : int =
  match Database.execute c.db sql with
  | Database.Ok_count n -> n
  | Database.Rows _ -> 0

(** Direct-path bulk load — the SQL*Loader analogue used by `TRANSFER^D`.
    Creates the table and streams tuples to the server in prefetch-sized
    batches, writing them straight into fresh pages.  Returns the created
    table's name. *)
let bulk_load c ~table (schema : Schema.t) (tuples : Tuple.t Seq.t) : string =
  Tango_obs.Counter.incr c_bulk_loads;
  Database.create_table c.db table (Schema.unqualify schema);
  let cat_table = Catalog.find (Database.catalog c.db) table in
  let batch = ref [] in
  let batch_len = ref 0 in
  let flush () =
    if !batch_len > 0 then begin
      let shipped, _ = ship_batch c (List.rev !batch) in
      List.iter
        (fun t ->
          ignore (Tango_storage.Heap_file.append cat_table.Catalog.file t))
        shipped;
      batch := [];
      batch_len := 0
    end
  in
  Seq.iter
    (fun t ->
      batch := t :: !batch;
      incr batch_len;
      if !batch_len >= c.row_prefetch then flush ())
    tuples;
  flush ();
  table
