(** Backend: the packed DBMS-under-the-middleware abstraction.  See the
    interface for the contract. *)

open Tango_rel
open Tango_sql

module type S = sig
  type conn
  type cursor

  val kind : string
  val execute_query : conn -> Ast.query -> cursor
  val cursor_schema : cursor -> Schema.t
  val fetch : cursor -> Tuple.t option
  val fetch_batch : cursor -> Tuple.t array option
  val execute_update : conn -> string -> int
  val bulk_load : conn -> table:string -> Schema.t -> Tuple.t Seq.t -> string
  val drop_table : conn -> string -> unit
  val table_exists : conn -> string -> bool
  val table_schema : conn -> string -> Schema.t

  val analyze :
    conn -> ?histograms:[ `All | `Cols of string list | `None ] -> string -> unit

  val schema_generation : conn -> int
  val counters : conn -> int * int * int
  val close : conn -> unit
end

(* Per-backend meters: session totals plus process-wide mirrors (the
   [backend.<name>.*] names the Prometheus endpoint renders).  Counters are
   find-or-create by name, so two backends with the same name share the
   process-wide mirrors — sessions should pick distinct shard names. *)
type meters = {
  mutable m_roundtrips : int;
  mutable m_tuples : int;
  mutable m_bytes : int;
  c_roundtrips : Tango_obs.Counter.t;
  c_tuples : Tango_obs.Counter.t;
  c_bytes : Tango_obs.Counter.t;
}

(* The pack is a record of closures over the implementation's connection —
   the existential: [conn]/[cursor] never escape. *)
type cursor = {
  cur_schema : Schema.t;
  cur_fetch : unit -> Tuple.t option;
  cur_fetch_batch : unit -> Tuple.t array option;
}

type t = {
  name : string;
  kind_ : string;
  client_opt : Client.t option;
  meters : meters;
  f_counters : unit -> int * int * int;
  f_query : Ast.query -> cursor;
  f_update : string -> int;
  f_bulk_load : table:string -> Schema.t -> Tuple.t Seq.t -> string;
  f_drop_table : string -> unit;
  f_table_exists : string -> bool;
  f_table_schema : string -> Schema.t;
  f_analyze :
    histograms:[ `All | `Cols of string list | `None ] option -> string -> unit;
  f_generation : unit -> int;
  f_close : unit -> unit;
}

let make_meters name =
  let c tail = Tango_obs.Counter.make (Printf.sprintf "backend.%s.%s" name tail) in
  { m_roundtrips = 0; m_tuples = 0; m_bytes = 0;
    c_roundtrips = c "roundtrips"; c_tuples = c "tuples_shipped";
    c_bytes = c "bytes_shipped" }

(* Account the boundary work [f] caused, by diffing the implementation's
   connection counters around the call.  All crossings — queries, fetches,
   bulk loads — flow through the same meter. *)
let metered meters counters f =
  let r0, t0, y0 = counters () in
  let finish () =
    let r1, t1, y1 = counters () in
    let dr = r1 - r0 and dt = t1 - t0 and dy = y1 - y0 in
    if dr <> 0 then begin
      meters.m_roundtrips <- meters.m_roundtrips + dr;
      Tango_obs.Counter.add meters.c_roundtrips dr
    end;
    if dt <> 0 then begin
      meters.m_tuples <- meters.m_tuples + dt;
      Tango_obs.Counter.add meters.c_tuples dt
    end;
    if dy <> 0 then begin
      meters.m_bytes <- meters.m_bytes + dy;
      Tango_obs.Counter.add meters.c_bytes dy
    end
  in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

let make (type c) (module M : S with type conn = c) (conn : c) ~name ?client ()
    : t =
  let meters = make_meters name in
  let counters () = M.counters conn in
  let m f = metered meters counters f in
  {
    name;
    kind_ = M.kind;
    client_opt = client;
    meters;
    f_counters = counters;
    f_query =
      (fun q ->
        let cur = m (fun () -> M.execute_query conn q) in
        {
          cur_schema = M.cursor_schema cur;
          cur_fetch = (fun () -> m (fun () -> M.fetch cur));
          cur_fetch_batch = (fun () -> m (fun () -> M.fetch_batch cur));
        });
    f_update = (fun sql -> m (fun () -> M.execute_update conn sql));
    f_bulk_load =
      (fun ~table schema seq ->
        m (fun () -> M.bulk_load conn ~table schema seq));
    f_drop_table = (fun tbl -> M.drop_table conn tbl);
    f_table_exists = (fun tbl -> M.table_exists conn tbl);
    f_table_schema = (fun tbl -> M.table_schema conn tbl);
    f_analyze = (fun ~histograms tbl -> M.analyze conn ?histograms tbl);
    f_generation = (fun () -> M.schema_generation conn);
    f_close = (fun () -> M.close conn);
  }

module In_process : S with type conn = Client.t = struct
  type conn = Client.t
  type cursor = Client.cursor

  let kind = "in_process"
  let execute_query = Client.execute_query_ast
  let cursor_schema = Client.cursor_schema
  let fetch = Client.fetch
  let fetch_batch = Client.fetch_batch
  let execute_update = Client.execute_update
  let bulk_load = Client.bulk_load

  let drop_table c table =
    if Database.table_exists (Client.database c) table then
      Database.drop_table (Client.database c) table

  let table_exists c table = Database.table_exists (Client.database c) table
  let table_schema c table = Database.table_schema (Client.database c) table

  let analyze c ?histograms table =
    ignore (Database.analyze (Client.database c) ?histograms table)

  let schema_generation c = Database.schema_generation (Client.database c)

  let counters c =
    (Client.roundtrips c, Client.tuples_shipped c, Client.bytes_shipped c)

  let close _ = ()
end

let of_client ?(name = "db") client =
  make (module In_process) client ~name ~client ()

let in_process ?(name = "db") ?row_prefetch ?roundtrip_spin db =
  of_client ~name (Client.connect ?row_prefetch ?roundtrip_spin db)

let name b = b.name
let kind b = b.kind_
let client b = b.client_opt
let database b = Option.map Client.database b.client_opt

let execute_query b q = b.f_query q
let cursor_schema cur = cur.cur_schema
let fetch cur = cur.cur_fetch ()
let fetch_batch cur = cur.cur_fetch_batch ()
let execute_update b sql = b.f_update sql
let bulk_load b ~table schema seq = b.f_bulk_load ~table schema seq
let drop_table b table = b.f_drop_table table
let table_exists b table = b.f_table_exists table
let table_schema b table = b.f_table_schema table
let analyze b ?histograms table = b.f_analyze ~histograms table
let schema_generation b = b.f_generation ()
let close b = b.f_close ()

let set_row_prefetch b n =
  Option.iter (fun c -> Client.set_row_prefetch c n) b.client_opt

let set_roundtrip_spin b n =
  Option.iter (fun c -> Client.set_roundtrip_spin c n) b.client_opt

let roundtrips b = b.meters.m_roundtrips
let tuples_shipped b = b.meters.m_tuples
let bytes_shipped b = b.meters.m_bytes

let reset_meters b =
  b.meters.m_roundtrips <- 0;
  b.meters.m_tuples <- 0;
  b.meters.m_bytes <- 0
