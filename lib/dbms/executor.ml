(** SQL execution engine.

    Queries are compiled to closures once, then run; compilation resolves all
    column references to positional accesses.  The engine mirrors what a
    circa-2000 relational DBMS does with the paper's workloads:

    - base-table access picks an index range/point scan when a conjunct
      matches an indexed attribute, else a full scan (paying page reads and
      tuple deserialization through {!Tango_storage.Heap_file});
    - joins default to sort-merge for equi-joins and nested loops otherwise;
      the session can force a method (the experiments' stand-in for Oracle
      hints);
    - grouping and duplicate elimination are sort-based;
    - derived tables are materialized once per statement (memoized), while
      correlated scalar subqueries are re-evaluated per outer row — which is
      precisely why temporal aggregation expressed in SQL is slow (paper
      Section 3.4). *)

open Tango_rel
open Tango_sql

exception Sql_error of string

let sql_error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

type join_method = Auto | Force_nested_loop | Force_sort_merge

type settings = { mutable join_method : join_method }

let default_settings () = { join_method = Auto }

(** Compilation/execution context. *)
type ctx = {
  catalog : Catalog.t;
  settings : settings;
  derived_cache : (Ast.query, Relation.t) Hashtbl.t;
      (** per-statement memo of uncorrelated derived tables *)
}

let make_ctx ?(settings = default_settings ()) catalog =
  { catalog; settings; derived_cache = Hashtbl.create 8 }

(* ------------------------------------------------------------------ *)
(* Expression compilation                                               *)
(* ------------------------------------------------------------------ *)

(* The runtime environment is a stack of rows, innermost first, matching the
   compile-time stack of schemas.  Frame 0 is the current row of the
   enclosing SELECT; outer frames support correlated subqueries. *)

type value_fn = Tuple.t list -> Value.t

let qualified q c = match q with None -> c | Some q -> q ^ "." ^ c

(* Resolve a column against the schema stack; returns frame and position. *)
let resolve schemas q c =
  let name = qualified q c in
  let rec go frame = function
    | [] -> None
    | schema :: rest -> (
        match Schema.index_opt schema name with
        | Some i -> Some (frame, i)
        | None -> go (frame + 1) rest)
  in
  go 0 schemas

let truthy = function Value.Bool b -> b | Value.Null -> false | _ -> true

(* SQL comparison: any NULL operand yields false. *)
let compare_op op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else
    let c = Value.compare a b in
    let r =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Neq -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | _ -> assert false
    in
    Value.Bool r

(* Infer the static type of an expression; used to build output schemas. *)
let rec infer_dtype infer_query schemas (e : Ast.expr) : Value.dtype =
  let recur = infer_dtype infer_query schemas in
  match e with
  | Lit Value.Null -> Value.TInt
  | Lit v -> Value.type_of v
  | Param n ->
      (* the DBMS never sees bind variables: the middleware instantiates
         plan templates before shipping SQL *)
      sql_error "unbound parameter $%d" n
  | Col (q, c) -> (
      match resolve schemas q c with
      | Some (frame, i) -> Schema.dtype_at (List.nth schemas frame) i
      | None -> sql_error "unknown column %s" (qualified q c))
  | Binop ((Add | Sub | Mul | Div) as op, a, b) -> (
      let ta = recur a and tb = recur b in
      match (op, ta, tb) with
      | _, Value.TFloat, _ | _, _, Value.TFloat | Ast.Div, _, _ -> Value.TFloat
      | Ast.Add, Value.TDate, Value.TInt | Ast.Add, Value.TInt, Value.TDate ->
          Value.TDate
      | Ast.Sub, Value.TDate, Value.TInt -> Value.TDate
      | Ast.Sub, Value.TDate, Value.TDate -> Value.TInt
      | _ -> Value.TInt)
  | Binop (_, _, _) | Not _ | Is_null _ | Is_not_null _ | Between _
  | In_subquery _ | Exists _ ->
      Value.TBool
  | Greatest (e :: _) | Least (e :: _) -> recur e
  | Greatest [] | Least [] -> sql_error "GREATEST/LEAST need arguments"
  | Agg (Count_star, _) | Agg (Count, _) -> Value.TInt
  | Agg (Avg, _) -> Value.TFloat
  | Agg ((Sum | Min | Max), Some a) -> recur a
  | Agg ((Sum | Min | Max), None) -> sql_error "aggregate needs an argument"
  | Scalar_subquery q -> (
      let schema = infer_query q in
      match Schema.attributes schema with
      | a :: _ -> a.Schema.dtype
      | [] -> sql_error "scalar subquery with empty select list")

(* ------------------------------------------------------------------ *)
(* Query compilation (mutually recursive with expressions)              *)
(* ------------------------------------------------------------------ *)

(* A compiled query maps the outer row stack to a relation. *)
type compiled_query = Tuple.t list -> Relation.t

let rec compile_query ctx (outer : Schema.t list) (q : Ast.query) :
    Schema.t * compiled_query =
  match q with
  | Ast.Select s -> compile_select ctx outer s
  | Ast.Union (a, b) ->
      let sa, fa = compile_query ctx outer a in
      let sb, fb = compile_query ctx outer b in
      if not (Schema.union_compatible sa sb) then
        sql_error "UNION arguments are not union-compatible";
      ( sa,
        fun rows ->
          let ra = fa rows and rb = fb rows in
          let all = Array.append (Relation.tuples ra) (Relation.tuples rb) in
          Array.sort Tuple.compare all;
          let out = ref [] in
          Array.iteri
            (fun i t ->
              if i = 0 || not (Tuple.equal t all.(i - 1)) then out := t :: !out)
            all;
          Relation.of_list sa (List.rev !out) )
  | Ast.Union_all (a, b) ->
      let sa, fa = compile_query ctx outer a in
      let sb, fb = compile_query ctx outer b in
      if not (Schema.union_compatible sa sb) then
        sql_error "UNION ALL arguments are not union-compatible";
      ( sa,
        fun rows ->
          let ra = fa rows and rb = fb rows in
          Relation.make sa
            (Array.append (Relation.tuples ra) (Relation.tuples rb)) )

and infer_query_schema ctx outer q = fst (compile_query ctx outer q)

and compile_expr ctx (schemas : Schema.t list) (e : Ast.expr) : value_fn =
  let recur = compile_expr ctx schemas in
  match e with
  | Lit v -> fun _ -> v
  | Param n -> sql_error "unbound parameter $%d" n
  | Col (q, c) -> (
      match resolve schemas q c with
      | Some (0, i) -> fun rows -> (List.hd rows).(i)
      | Some (frame, i) -> fun rows -> (List.nth rows frame).(i)
      | None -> sql_error "unknown column %s" (qualified q c))
  | Binop (Ast.And, a, b) ->
      let fa = recur a and fb = recur b in
      fun rows -> Value.Bool (truthy (fa rows) && truthy (fb rows))
  | Binop (Ast.Or, a, b) ->
      let fa = recur a and fb = recur b in
      fun rows -> Value.Bool (truthy (fa rows) || truthy (fb rows))
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
      let fa = recur a and fb = recur b in
      let f =
        match op with
        | Ast.Add -> Value.add
        | Ast.Sub -> Value.sub
        | Ast.Mul -> Value.mul
        | Ast.Div -> Value.div
        | _ -> assert false
      in
      fun rows -> f (fa rows) (fb rows)
  | Binop (op, a, b) ->
      let fa = recur a and fb = recur b in
      fun rows -> compare_op op (fa rows) (fb rows)
  | Not a ->
      let fa = recur a in
      fun rows -> Value.Bool (not (truthy (fa rows)))
  | Is_null a ->
      let fa = recur a in
      fun rows -> Value.Bool (Value.is_null (fa rows))
  | Is_not_null a ->
      let fa = recur a in
      fun rows -> Value.Bool (not (Value.is_null (fa rows)))
  | Between (a, lo, hi) ->
      let fa = recur a and flo = recur lo and fhi = recur hi in
      fun rows ->
        let v = fa rows in
        Value.Bool
          (truthy (compare_op Ast.Ge v (flo rows))
          && truthy (compare_op Ast.Le v (fhi rows)))
  | Greatest es ->
      let fs = List.map recur es in
      fun rows ->
        List.fold_left
          (fun acc f -> Value.greatest acc (f rows))
          ((List.hd fs) rows) (List.tl fs)
  | Least es ->
      let fs = List.map recur es in
      fun rows ->
        List.fold_left
          (fun acc f -> Value.least acc (f rows))
          ((List.hd fs) rows) (List.tl fs)
  | Agg _ -> sql_error "aggregate used outside SELECT/HAVING of a grouped query"
  | Scalar_subquery q ->
      let _, fq = compile_query ctx schemas q in
      fun rows ->
        let r = fq rows in
        if Relation.cardinality r = 0 then Value.Null
        else if Relation.cardinality r > 1 then
          sql_error "scalar subquery returned %d rows" (Relation.cardinality r)
        else (Relation.tuples r).(0).(0)
  | In_subquery (a, q) ->
      let fa = recur a in
      let _, fq = compile_query ctx schemas q in
      fun rows ->
        let v = fa rows in
        let r = fq rows in
        Value.Bool
          (Array.exists (fun t -> Value.equal t.(0) v) (Relation.tuples r))
  | Exists q ->
      let _, fq = compile_query ctx schemas q in
      fun rows -> Value.Bool (Relation.cardinality (fq rows) > 0)

(* ---------------- FROM-item access paths ---------------- *)

(* A compiled FROM item: its (qualified) schema and a producer. *)
and compile_table_ref ctx outer (tref : Ast.table_ref) :
    Schema.t * (Tuple.t list -> Relation.t) =
  match tref with
  | Ast.Table (name, alias) ->
      let table = Catalog.find ctx.catalog name in
      let qual = Option.value alias ~default:name in
      let schema = Schema.qualify qual (Tango_storage.Heap_file.schema table.file) in
      ( schema,
        fun _rows ->
          Relation.of_list schema
            (List.of_seq (Tango_storage.Heap_file.scan table.file)) )
  | Ast.Derived (q, alias) ->
      let sub_schema, fq = compile_query ctx outer q in
      let schema = Schema.qualify alias (Schema.unqualify sub_schema) in
      ( schema,
        fun rows ->
          let r =
            match Hashtbl.find_opt ctx.derived_cache q with
            | Some r -> r
            | None ->
                let r = fq rows in
                (* Derived tables cannot be correlated in this subset, so
                   memoizing per statement is safe (Oracle-style view
                   materialization). *)
                Hashtbl.replace ctx.derived_cache q r;
                r
          in
          Relation.make schema (Relation.tuples r) )

(* Try to use an index for a base-table FROM item given single-table
   conjuncts of the form <col> op <literal>.  Returns the reduced relation
   and the list of conjuncts actually consumed. *)
and indexed_scan ctx (table : Catalog.table) schema cands :
    (Relation.t * Ast.expr list) option =
  let open Ast in
  let literal_bound e col_side =
    (* Returns (attr, op, value) for col-vs-literal comparisons. *)
    match (e, col_side) with
    | Binop (op, Col (q, c), Lit v), `Left -> Some (qualified q c, op, v)
    | Binop (op, Lit v, Col (q, c)), `Right -> Some (qualified q c, op, v)
    | _ -> None
  in
  let flip = function
    | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op
  in
  let bounds =
    List.filter_map
      (fun e ->
        match literal_bound e `Left with
        | Some b -> Some (e, b)
        | None -> (
            match literal_bound e `Right with
            | Some (a, op, v) -> Some (e, (a, flip op, v))
            | None -> None))
      cands
  in
  (* Pick the first bound whose attribute has an index. *)
  let usable =
    List.filter_map
      (fun (e, (attr, op, v)) ->
        match Schema.index_opt schema attr with
        | None -> None
        | Some _ -> (
            let base = Schema.base_name attr in
            match Catalog.index_on table base with
            | Some idx -> Some (e, idx, op, v)
            | None -> None))
      bounds
  in
  (* Prefer equality bounds. *)
  let usable =
    List.stable_sort
      (fun (_, _, op1, _) (_, _, op2, _) ->
        let rank = function Eq -> 0 | _ -> 1 in
        Int.compare (rank op1) (rank op2))
      usable
  in
  match usable with
  | [] -> None
  | (e, idx, op, v) :: _ ->
      let rids =
        match op with
        | Eq -> Tango_storage.Ordered_index.lookup idx v
        | Lt | Le -> Tango_storage.Ordered_index.range idx ~hi:v ()
        | Gt | Ge -> Tango_storage.Ordered_index.range idx ~lo:v ()
        | _ -> []
      in
      let matches t =
        truthy ((compile_expr ctx [ schema ] e) [ t ])
      in
      let tuples =
        List.filter_map
          (fun rid ->
            let t = Tango_storage.Heap_file.fetch table.file rid in
            (* Re-check the predicate: range lookups for strict comparisons
               over-approximate (Lt via hi-bound includes equality). *)
            if matches t then Some t else None)
          rids
      in
      Some (Relation.of_list schema tuples, [ e ])

(* ---------------- joins ---------------- *)

and merge_join left right l_idx r_idx extra_pred =
  (* Sort-merge equi-join on a single attribute pair; [extra_pred] filters
     concatenated candidate tuples. *)
  let ls = Array.copy (Relation.tuples left) in
  let rs = Array.copy (Relation.tuples right) in
  Array.sort (fun a b -> Value.compare a.(l_idx) b.(l_idx)) ls;
  Array.sort (fun a b -> Value.compare a.(r_idx) b.(r_idx)) rs;
  let out = ref [] in
  let nl = Array.length ls and nr = Array.length rs in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let kv = ls.(!i).(l_idx) in
    let c = Value.compare kv rs.(!j).(r_idx) in
    if Value.is_null kv then incr i
    else if Value.is_null rs.(!j).(r_idx) then incr j
    else if c < 0 then incr i
    else if c > 0 then incr j
    else begin
      (* Equal keys: emit the cross product of the two equal runs. *)
      let i_end = ref !i in
      while !i_end < nl && Value.compare ls.(!i_end).(l_idx) kv = 0 do
        incr i_end
      done;
      let j_end = ref !j in
      while !j_end < nr && Value.compare rs.(!j_end).(r_idx) kv = 0 do
        incr j_end
      done;
      for a = !i to !i_end - 1 do
        for b = !j to !j_end - 1 do
          let t = Tuple.concat ls.(a) rs.(b) in
          if extra_pred t then out := t :: !out
        done
      done;
      i := !i_end;
      j := !j_end
    end
  done;
  List.rev !out

and nested_loop_join left right pred =
  let out = ref [] in
  Array.iter
    (fun lt ->
      Array.iter
        (fun rt ->
          let t = Tuple.concat lt rt in
          if pred t then out := t :: !out)
        (Relation.tuples right))
    (Relation.tuples left);
  List.rev !out

(* ---------------- SELECT ---------------- *)

and compile_select ctx (outer : Schema.t list) (s : Ast.select) :
    Schema.t * compiled_query =
  let open Ast in
  (* A conventional DBMS has no temporal SQL support -- that is what the
     middleware adds on top (paper Section 1). *)
  if s.validtime then
    sql_error "VALIDTIME is not supported by the DBMS; use the middleware";
  (* 1. FROM items *)
  let items = List.map (compile_table_ref ctx outer) s.from in
  let from_schemas = List.map fst items in
  let combined_schema =
    List.fold_left Schema.concat (Schema.make []) from_schemas
  in
  (* 2. classify WHERE conjuncts *)
  let conjuncts = match s.where with None -> [] | Some w -> Ast.conjuncts w in
  (* Which FROM items does a conjunct touch?  Subquery-bearing conjuncts are
     always evaluated at the top. *)
  let touches schema e =
    List.for_all
      (fun (q, c) -> Schema.mem schema (qualified q c))
      (Ast.columns e)
  in
  let has_subquery = Ast.contains_subquery in
  let single_table =
    List.map
      (fun (schema, _) ->
        List.filter
          (fun e ->
            (not (has_subquery e))
            && Ast.columns e <> []
            && touches schema e)
          conjuncts)
      items
  in
  let consumed = List.concat single_table in
  let rest =
    List.filter (fun e -> not (List.memq e consumed)) conjuncts
  in
  (* 3. compile the FROM pipeline *)
  let compile_source i (schema, produce) table_conjuncts =
    (* Per-item filtered source; base tables may use an index. *)
    let filters =
      List.map (fun e -> compile_expr ctx (schema :: outer) e) table_conjuncts
    in
    let apply_filters rows rel =
      Relation.filter
        (fun t -> List.for_all (fun f -> truthy (f (t :: rows))) filters)
        rel
    in
    match List.nth s.from i with
    | Ast.Table (name, _alias) ->
        let table = Catalog.find ctx.catalog name in
        fun rows ->
          (* Only constant predicates can drive an index. *)
          (match indexed_scan ctx table schema table_conjuncts with
          | Some (rel, used) ->
              let remaining =
                List.filter (fun e -> not (List.memq e used)) table_conjuncts
              in
              let fs =
                List.map (fun e -> compile_expr ctx (schema :: outer) e) remaining
              in
              Relation.filter
                (fun t -> List.for_all (fun f -> truthy (f (t :: rows))) fs)
                rel
          | None -> apply_filters rows (produce rows))
    | Ast.Derived _ -> fun rows -> apply_filters rows (produce rows)
  in
  let sources =
    List.mapi
      (fun i (item, tcs) -> compile_source i item tcs)
      (List.combine items single_table)
  in
  (* Base-table info per FROM item, for index nested-loop joins: the
     catalog table plus compiled residual single-table filters to re-apply
     after an index probe. *)
  let base_infos =
    List.mapi
      (fun i ((schema, _), tcs) ->
        match List.nth s.from i with
        | Ast.Table (name, _) ->
            let table = Catalog.find ctx.catalog name in
            let fs = List.map (fun e -> compile_expr ctx (schema :: outer) e) tcs in
            Some (table, schema, fs)
        | Ast.Derived _ -> None)
      (List.combine items single_table)
  in
  (* Join conjuncts: touch the combined schema but not a single item, and no
     subqueries.  With a single FROM item there is no join stage, so
     everything left is evaluated at the top. *)
  let join_conjuncts =
    if List.length items <= 1 then []
    else
      List.filter
        (fun e ->
          (not (List.memq e consumed))
          && (not (has_subquery e))
          && touches combined_schema e)
        rest
  in
  let top_conjuncts =
    List.filter (fun e -> not (List.memq e join_conjuncts)) rest
  in
  (* Incremental left-deep join over the FROM list.  Sources are lazy so
     that an index-nested-loop probe of a base table avoids scanning it. *)
  let join_all rows =
    let rels = List.map (fun src -> lazy (src rows)) sources in
    match (rels, from_schemas) with
    | [], _ -> Relation.of_list (Schema.make []) [ [||] ]
    | [ r ], _ -> Lazy.force r
    | _ :: _ :: _, ([] | [ _ ]) -> assert false
    | r0 :: rrest, s0 :: srest ->
        let base_infos_tail =
          match base_infos with _ :: t -> t | [] -> []
        in
        let acc_rel = ref (Lazy.force r0) and acc_schema = ref s0 in
        let remaining = ref join_conjuncts in
        let iter3 f xs ys zs = List.iter2 (fun x (y, z) -> f x y z) xs (List.combine ys zs) in
        iter3
          (fun r sch base_info ->
            let new_schema = Schema.concat !acc_schema sch in
            (* conjuncts now applicable *)
            let applicable, later =
              List.partition (fun e -> touches new_schema e) !remaining
            in
            remaining := later;
            (* find an equi-join pair: acc.col = new.col *)
            let equi =
              List.find_map
                (fun e ->
                  match e with
                  | Binop (Eq, Col (q1, c1), Col (q2, c2)) -> (
                      let n1 = qualified q1 c1 and n2 = qualified q2 c2 in
                      match
                        (Schema.index_opt !acc_schema n1, Schema.index_opt sch n2)
                      with
                      | Some i1, Some i2 -> Some (e, i1, i2)
                      | _ -> (
                          match
                            (Schema.index_opt !acc_schema n2,
                             Schema.index_opt sch n1)
                          with
                          | Some i1, Some i2 -> Some (e, i1, i2)
                          | _ -> None))
                  | _ -> None)
                applicable
            in
            let fs =
              List.map
                (fun e -> compile_expr ctx (new_schema :: outer) e)
                applicable
            in
            let pred extra_skip t =
              List.for_all2
                (fun e f -> List.memq e extra_skip || truthy (f (t :: rows)))
                applicable fs
            in
            (* Index nested loop: when the new side is a base table with an
               index on its join attribute, probe it per accumulated tuple
               (the classic RBO choice) instead of materializing it. *)
            let index_probe =
              match (equi, base_info) with
              | Some (e, i1, i2), Some (table, _bschema, residual) -> (
                  let attr = Schema.base_name (Schema.name_at sch i2) in
                  match Catalog.index_on table attr with
                  | Some idx -> Some (e, i1, idx, table, residual)
                  | None -> None)
              | _ -> None
            in
            let index_nested_loop (e, i1, idx, (table : Catalog.table), residual) =
              let out = ref [] in
              Array.iter
                (fun (at : Tuple.t) ->
                  let key = at.(i1) in
                  if not (Value.is_null key) then
                    List.iter
                      (fun rid ->
                        let bt = Tango_storage.Heap_file.fetch table.Catalog.file rid in
                        if
                          List.for_all (fun f -> truthy (f (bt :: rows))) residual
                        then begin
                          let t = Tuple.concat at bt in
                          if pred [ e ] t then out := t :: !out
                        end)
                      (Tango_storage.Ordered_index.lookup idx key))
                (Relation.tuples !acc_rel);
              List.rev !out
            in
            (* merge_join key indexes are relative to each input relation:
               [i1] into the accumulated left, [i2] into the new right. *)
            let joined =
              match (ctx.settings.join_method, equi, index_probe) with
              | (Auto | Force_nested_loop), _, Some probe ->
                  index_nested_loop probe
              | Force_nested_loop, _, None | Auto, None, _ | Force_sort_merge, None, _ ->
                  nested_loop_join !acc_rel (Lazy.force r) (pred [])
              | (Auto | Force_sort_merge), Some (e, i1, i2), _ ->
                  merge_join !acc_rel (Lazy.force r) i1 i2 (pred [ e ])
            in
            acc_schema := new_schema;
            acc_rel := Relation.of_list new_schema joined)
          rrest srest base_infos_tail;
        !acc_rel
  in
  ignore combined_schema;
  (* 4. top-level filter (incl. subquery conjuncts) *)
  let top_filters =
    List.map (fun e -> compile_expr ctx (combined_schema :: outer) e) top_conjuncts
  in
  (* 5. projection/grouping *)
  let grouped =
    s.group_by <> []
    || List.exists
         (function Expr (e, _) -> Ast.contains_agg e | Star -> false)
         s.items
    || (match s.having with Some h -> Ast.contains_agg h | None -> false)
  in
  let expand_items () =
    (* Expand Star into explicit column items. *)
    List.concat_map
      (function
        | Star ->
            List.map
              (fun a -> Expr (Col (None, a.Schema.name), Some a.Schema.name))
              (Schema.attributes combined_schema)
        | Expr (e, a) -> [ Expr (e, a) ])
      s.items
  in
  let items_expanded = expand_items () in
  let item_name i (e : Ast.expr) alias =
    match (alias, e) with
    | Some a, _ -> a
    | None, Col (_, c) -> c
    | None, Agg (f, _) -> Ast.aggfun_name f
    | None, _ -> "COL" ^ string_of_int (i + 1)
  in
  let out_schema =
    Schema.make
      (List.mapi
         (fun i item ->
           match item with
           | Expr (e, alias) ->
               ( item_name i e alias,
                 infer_dtype
                   (fun q -> infer_query_schema ctx (combined_schema :: outer) q)
                   (combined_schema :: outer) e )
           | Star -> assert false)
         items_expanded)
  in
  let compiled =
    if not grouped then compile_plain ctx outer s combined_schema
        items_expanded out_schema join_all top_filters
    else compile_grouped ctx outer s combined_schema items_expanded out_schema
        join_all top_filters
  in
  (out_schema, compiled)

and compile_plain ctx outer (s : Ast.select) combined_schema items out_schema
    join_all top_filters : compiled_query =
  let open Ast in
  let item_fns =
    List.map
      (function
        | Expr (e, _) -> compile_expr ctx (combined_schema :: outer) e
        | Star -> assert false)
      items
  in
  (* ORDER BY: prefer output-schema resolution (aliases), fall back to the
     pre-projection schema. *)
  let order_plan =
    List.map
      (fun (e, asc) ->
        match e with
        | Col (q, c) when Schema.index_opt out_schema (qualified q c) <> None ->
            `Output (Schema.index out_schema (qualified q c), asc)
        | _ -> `Input (compile_expr ctx (combined_schema :: outer) e, asc))
      s.order_by
  in
  fun rows ->
    let input = join_all rows in
    let input =
      if top_filters = [] then input
      else
        Relation.filter
          (fun t -> List.for_all (fun f -> truthy (f (t :: rows))) top_filters)
          input
    in
    (* Sort on input-resolved keys first (stable), carry through projection,
       then sort on output-resolved keys. *)
    let input_keys =
      List.filter_map (function `Input (f, asc) -> Some (f, asc) | _ -> None)
        order_plan
    in
    let input =
      if input_keys = [] then input
      else begin
        let ts = Array.copy (Relation.tuples input) in
        let keyed =
          Array.map
            (fun t -> (List.map (fun (f, _) -> f (t :: rows)) input_keys, t))
            ts
        in
        Array.stable_sort
          (fun (ka, _) (kb, _) ->
            let rec cmp ks asc_list =
              match (ks, asc_list) with
              | [], _ -> 0
              | (a, b) :: rest, (_, asc) :: arest -> (
                  let c = Value.compare a b in
                  let c = if asc then c else -c in
                  match c with 0 -> cmp rest arest | c -> c)
              | _ -> 0
            in
            cmp (List.combine ka kb) input_keys)
          keyed;
        Relation.make (Relation.schema input) (Array.map snd keyed)
      end
    in
    let projected =
      Relation.make out_schema
        (Array.map
           (fun t -> Array.of_list (List.map (fun f -> f (t :: rows)) item_fns))
           (Relation.tuples input))
    in
    let projected =
      if not s.distinct then projected
      else begin
        let ts = Array.copy (Relation.tuples projected) in
        Array.sort Tuple.compare ts;
        let out = ref [] in
        Array.iteri
          (fun i t ->
            if i = 0 || not (Tuple.equal t ts.(i - 1)) then out := t :: !out)
          ts;
        Relation.of_list out_schema (List.rev !out)
      end
    in
    let output_keys =
      List.filter_map
        (function `Output (i, asc) -> Some (i, asc) | _ -> None)
        order_plan
    in
    if output_keys = [] then projected
    else begin
      let ts = Array.copy (Relation.tuples projected) in
      Array.stable_sort
        (fun a b ->
          let rec cmp = function
            | [] -> 0
            | (i, asc) :: rest -> (
                let c = Value.compare a.(i) b.(i) in
                let c = if asc then c else -c in
                match c with 0 -> cmp rest | c -> c)
          in
          cmp output_keys)
        ts;
      Relation.make out_schema ts
    end

and compile_grouped ctx outer (s : Ast.select) combined_schema items
    out_schema join_all top_filters : compiled_query =
  let open Ast in
  let schemas = combined_schema :: outer in
  let group_fns = List.map (compile_expr ctx schemas) s.group_by in
  (* Compile an expression in "aggregate context": Agg nodes reduce over the
     group's member rows; other leaves evaluate on the first member. *)
  let rec compile_agg_expr (e : Ast.expr) :
      Tuple.t list (* members *) -> Tuple.t list (* outer rows *) -> Value.t =
    match e with
    | Agg (Count_star, _) -> fun members _ -> Value.Int (List.length members)
    | Agg (f, Some arg) ->
        let farg = compile_expr ctx schemas arg in
        fun members rows ->
          let vs =
            List.filter_map
              (fun m ->
                let v = farg (m :: rows) in
                if Value.is_null v then None else Some v)
              members
          in
          reduce_agg f vs
    | Agg (Count, None) | Agg (Sum, None) | Agg (Avg, None)
    | Agg (Min, None) | Agg (Max, None) ->
        sql_error "aggregate needs an argument"
    | Binop (op, a, b) ->
        let fa = compile_agg_expr a and fb = compile_agg_expr b in
        fun members rows ->
          let va = fa members rows and vb = fb members rows in
          apply_binop op va vb
    | Not a ->
        let fa = compile_agg_expr a in
        fun members rows -> Value.Bool (not (truthy (fa members rows)))
    | _ when not (Ast.contains_agg e) ->
        let f = compile_expr ctx schemas e in
        fun members rows ->
          (match members with
          | m :: _ -> f (m :: rows)
          | [] -> Value.Null)
    | _ -> sql_error "unsupported aggregate expression"
  and apply_binop op va vb =
    match op with
    | Add -> Value.add va vb
    | Sub -> Value.sub va vb
    | Mul -> Value.mul va vb
    | Div -> Value.div va vb
    | And -> Value.Bool (truthy va && truthy vb)
    | Or -> Value.Bool (truthy va || truthy vb)
    | (Eq | Neq | Lt | Le | Gt | Ge) as op -> compare_op op va vb
  and reduce_agg f vs =
    match (f, vs) with
    | Count, _ -> Value.Int (List.length vs)
    | _, [] -> Value.Null
    | Sum, v :: rest -> List.fold_left Value.add v rest
    | Avg, vs ->
        let n = List.length vs in
        Value.Float
          (List.fold_left (fun acc v -> acc +. Value.to_float v) 0.0 vs
          /. float_of_int n)
    | Min, v :: rest ->
        List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v rest
    | Max, v :: rest ->
        List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v rest
    | Count_star, _ -> Value.Int (List.length vs)
  in
  let item_fns =
    List.map
      (function
        | Expr (e, _) -> compile_agg_expr e
        | Star -> sql_error "SELECT * is not allowed with GROUP BY")
      items
  in
  let having_fn = Option.map compile_agg_expr s.having in
  let order_keys =
    List.map
      (fun (e, asc) ->
        match e with
        | Col (q, c) when Schema.index_opt out_schema (qualified q c) <> None ->
            (Schema.index out_schema (qualified q c), asc)
        | _ -> sql_error "ORDER BY of a grouped query must use output columns")
      s.order_by
  in
  fun rows ->
    let input = join_all rows in
    let input =
      if top_filters = [] then input
      else
        Relation.filter
          (fun t -> List.for_all (fun f -> truthy (f (t :: rows))) top_filters)
          input
    in
    (* Sort-based grouping on the group-by key values. *)
    let keyed =
      Array.map
        (fun t -> (List.map (fun f -> f (t :: rows)) group_fns, t))
        (Relation.tuples input)
    in
    let cmp_key ka kb =
      let rec go = function
        | [] -> 0
        | (a, b) :: rest -> (
            match Value.compare a b with 0 -> go rest | c -> c)
      in
      go (List.combine ka kb)
    in
    Array.sort (fun (ka, _) (kb, _) -> cmp_key ka kb) keyed;
    let groups = ref [] in
    let n = Array.length keyed in
    let i = ref 0 in
    while !i < n do
      let key, _ = keyed.(!i) in
      let members = ref [] in
      while !i < n && cmp_key (fst keyed.(!i)) key = 0 do
        members := snd keyed.(!i) :: !members;
        incr i
      done;
      groups := List.rev !members :: !groups
    done;
    let groups = List.rev !groups in
    (* A global aggregate over an empty input still yields one row. *)
    let groups =
      if groups = [] && s.group_by = [] then [ [] ] else groups
    in
    let out_tuples =
      List.filter_map
        (fun members ->
          let keep =
            match having_fn with
            | None -> true
            | Some f -> truthy (f members rows)
          in
          if not keep then None
          else
            Some
              (Array.of_list (List.map (fun f -> f members rows) item_fns)))
        groups
    in
    let out = Relation.of_list out_schema out_tuples in
    if order_keys = [] then out
    else begin
      let ts = Array.copy (Relation.tuples out) in
      Array.stable_sort
        (fun a b ->
          let rec cmp = function
            | [] -> 0
            | (i, asc) :: rest -> (
                let c = Value.compare a.(i) b.(i) in
                let c = if asc then c else -c in
                match c with 0 -> cmp rest | c -> c)
          in
          cmp order_keys)
        ts;
      Relation.make out_schema ts
    end

let c_queries = Tango_obs.Counter.make "dbms.queries"
let c_rows = Tango_obs.Counter.make "dbms.rows_returned"

(** Execute a query AST against a catalog. *)
let run_query ?settings catalog (q : Ast.query) : Relation.t =
  Tango_obs.Counter.incr c_queries;
  Tango_obs.Trace.span "dbms.query" (fun () ->
      let ctx = make_ctx ?settings catalog in
      let _, f = compile_query ctx [] q in
      let out = f [] in
      Tango_obs.Counter.add c_rows (Relation.cardinality out);
      Tango_obs.Trace.attr "rows" (Tango_obs.Trace.Int (Relation.cardinality out));
      out)
