(** A topology: the set of backends a middleware session executes over.

    At most one table is {e range-partitioned} across the backends on a
    numeric (chronon) column — in the UIS workload, POSITION on its period
    start [T1].  Every shard declares a closed-open bound [\[lo, hi)] on
    that column; the slices must be disjoint and cover the data (the
    loaders guarantee this).  All other tables — and every temporary table
    a [TRANSFER^D] creates — are {e replicated} to all backends, so any
    single-shard SQL statement sees a complete copy of everything except
    its slice of the partitioned table.

    The {!generation} counter advances on any topology change
    (adding a shard, re-sharding): optimized plans bake the partition
    layout in, so the plan cache keys on it. *)

type bounds = {
  lo : int option;  (** inclusive chronon lower bound; [None] = unbounded *)
  hi : int option;  (** exclusive chronon upper bound; [None] = unbounded *)
}

val unbounded : bounds

type t

val single : Backend.t -> t
(** The classical one-DBMS architecture: no partitioned table. *)

val create :
  ?partitioned:string * string -> (Backend.t * bounds) list -> t
(** [create ~partitioned:(table, column) shards] — [shards] must be
    non-empty; raises [Invalid_argument] otherwise.  Without
    [partitioned], the first backend is simply the primary and the rest
    hold replicas. *)

val primary : t -> Backend.t
(** The first backend — where unpartitioned work runs. *)

val backends : t -> Backend.t list
val shards : t -> (Backend.t * bounds) list
val shard_count : t -> int

val is_sharded : t -> bool
(** More than one backend {e and} a partitioned table. *)

val partitioned_table : t -> (string * string) option
(** [(table, column)] when a table is partitioned. *)

val find : t -> string -> Backend.t option
(** Backend by name. *)

val generation : t -> int

val bump_generation : t -> unit
(** Record a topology change (re-sharding, bounds moved): cached plans
    against this topology must not be reused. *)

val add_shard : t -> Backend.t -> bounds -> unit
(** Append a shard (the caller is responsible for having placed the data)
    and advance {!generation}. *)

val quantile_bounds : int array -> int -> bounds list
(** [quantile_bounds values n]: [n] contiguous closed-open bounds
    splitting the (unsorted) chronon sample [values] at its quantiles, so
    skewed data still partitions evenly.  First bound is open below, last
    open above. *)

val close : t -> unit
(** Close every backend. *)
