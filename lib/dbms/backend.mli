(** The backend abstraction: everything the middleware needs from a DBMS
    under the temporal layer, factored out of {!Client} so that several
    backends — each holding a partition of the data — can sit behind one
    middleware session (see {!Topology}).

    Implementations provide the module type {!S}; {!make} packs an
    implementation together with an open connection into the first-class
    handle {!t} the rest of the system works with.  The handle meters every
    boundary crossing into per-backend [backend.<name>.*] counters of
    {!Tango_obs} (visible on [/metrics]), next to the process-wide
    [client.*] totals.

    A backend's {e cost-factor handle} is its {!name}: the profile layer
    keys per-backend calibrated cost factors by it, so shards behind
    different (simulated) latencies calibrate independently. *)

open Tango_rel
open Tango_sql

(** What a backend implementation must provide.  [conn] is an open
    connection; [cursor] a server-side result being drained. *)
module type S = sig
  type conn
  type cursor

  val kind : string
  (** Implementation family name (e.g. ["in_process"]). *)

  val execute_query : conn -> Ast.query -> cursor
  val cursor_schema : cursor -> Schema.t
  val fetch : cursor -> Tuple.t option
  val fetch_batch : cursor -> Tuple.t array option
  (** Batch pull; [None] at exhaustion, never an empty array. *)

  val execute_update : conn -> string -> int

  val bulk_load : conn -> table:string -> Schema.t -> Tuple.t Seq.t -> string
  (** Direct-path load into a fresh table; returns the table name. *)

  val drop_table : conn -> string -> unit
  val table_exists : conn -> string -> bool
  val table_schema : conn -> string -> Schema.t

  val analyze :
    conn -> ?histograms:[ `All | `Cols of string list | `None ] -> string -> unit

  val schema_generation : conn -> int
  (** Monotone DDL/ANALYZE generation (see {!Database.schema_generation}). *)

  val counters : conn -> int * int * int
  (** [(roundtrips, tuples_shipped, bytes_shipped)] since connect — the
      meter {!make} diffs around each operation. *)

  val close : conn -> unit
end

type t
(** A packed backend: an implementation of {!S} plus its connection. *)

type cursor
(** A metered cursor on some backend. *)

val make :
  (module S with type conn = 'c) -> 'c -> name:string -> ?client:Client.t ->
  unit -> t
(** Pack connection [conn] of implementation [m] as backend [name].
    [client] is the in-process escape hatch (see {!client}). *)

val in_process :
  ?name:string -> ?row_prefetch:int -> ?roundtrip_spin:int -> Database.t -> t
(** The first (and reference) implementation: an in-process
    {!Tango_dbms} reached through the marshalling {!Client} boundary.
    Default [name] is ["db"]. *)

val of_client : ?name:string -> Client.t -> t
(** Wrap an already-open in-process client. *)

val name : t -> string
(** The backend's name — also its cost-factor handle. *)

val kind : t -> string

val client : t -> Client.t option
(** The underlying in-process client, when the backend is in-process.
    Calibration ({!Tango_cost}-level microbenchmarks) and the workload
    loaders need the raw boundary; remote implementations return [None]. *)

val database : t -> Database.t option
(** The in-process database behind {!client}, when available. *)

(** {1 Operations} — each is metered into the backend's counters. *)

val execute_query : t -> Ast.query -> cursor
val cursor_schema : cursor -> Schema.t
val fetch : cursor -> Tuple.t option
val fetch_batch : cursor -> Tuple.t array option
val execute_update : t -> string -> int
val bulk_load : t -> table:string -> Schema.t -> Tuple.t Seq.t -> string
val drop_table : t -> string -> unit
val table_exists : t -> string -> bool
val table_schema : t -> string -> Schema.t

val analyze :
  t -> ?histograms:[ `All | `Cols of string list | `None ] -> string -> unit

val schema_generation : t -> int
val close : t -> unit

val set_row_prefetch : t -> int -> unit
(** In-process only; a no-op on other implementations. *)

val set_roundtrip_spin : t -> int -> unit
(** In-process only; a no-op on other implementations. *)

(** {1 Per-backend meters}

    Totals since {!make}; also mirrored to the process-wide
    [backend.<name>.roundtrips]/[...tuples_shipped]/[...bytes_shipped]
    counters of {!Tango_obs}. *)

val roundtrips : t -> int
val tuples_shipped : t -> int
val bytes_shipped : t -> int
val reset_meters : t -> unit
