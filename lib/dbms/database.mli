(** The database façade — the "conventional DBMS" TANGO sits on top of.

    Accepts SQL text (or pre-parsed statements), maintains the catalog, and
    exposes ANALYZE and index DDL.  The middleware accesses it only through
    this module and {!Client}, mirroring the paper's JDBC boundary. *)

open Tango_rel
open Tango_sql

type t

type result = Rows of Relation.t | Ok_count of int

val create : ?pool_pages:int -> unit -> t
(** Fresh empty database.  [pool_pages] sizes the shared LRU buffer pool
    (default 1024 pages). *)

val catalog : t -> Catalog.t
val io_stats : t -> Tango_storage.Io_stats.t
val buffer_pool : t -> Tango_storage.Buffer_pool.t
val settings : t -> Executor.settings

val set_join_method : t -> Executor.join_method -> unit
(** Force a join method — the stand-in for Oracle hints (Query 4). *)

val schema_generation : t -> int
(** Monotone counter advanced by DDL (create/drop table, create index)
    and ANALYZE on non-temporary tables; `TANGO_TMP_*` transfer tables do
    not advance it.  Plan caches compare it to detect staleness. *)

val execute_ast : t -> Ast.statement -> result
val execute : t -> string -> result

val query : t -> string -> Relation.t
(** Run a SELECT; raises {!Executor.Sql_error} on DDL. *)

val query_ast : t -> Ast.query -> Relation.t

val create_table : t -> string -> Schema.t -> unit
val drop_table : t -> string -> unit
val table_exists : t -> string -> bool
val table_schema : t -> string -> Schema.t
val table_cardinality : t -> string -> int

val load : t -> string -> Relation.t -> unit
(** Bulk-append into an existing table. *)

val load_relation : t -> string -> Relation.t -> unit
(** Create-and-load in one step (the schema is unqualified). *)

val fresh_temp_name : t -> string
(** Unique temp-table name for a `TRANSFER^D` ("the table must be dropped
    at the end of the query"). *)

val create_index : t -> ?clustered:bool -> string -> string -> unit
(** [create_index db table attr]. *)

val analyze :
  t ->
  ?histograms:[ `All | `Cols of string list | `None ] ->
  ?buckets:int ->
  ?bump:bool ->
  string ->
  Stat.table_stats
(** ANALYZE one table (see {!Analyze.run}).  Advances the
    {!schema_generation} (statistics changed, cached plans are stale)
    unless [bump:false] — which the middleware's internal statistics
    collection passes, since its re-ANALYZE is an implementation detail,
    not a user-visible statistics change. *)

val analyze_all :
  t ->
  ?histograms:[ `All | `Cols of string list | `None ] ->
  ?buckets:int ->
  unit ->
  unit

val stats_of : t -> string -> Stat.table_stats option
(** Catalog statistics, if the table has been analyzed. *)
