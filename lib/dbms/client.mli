(** The middleware⇄DBMS boundary — the JDBC stand-in.

    Every tuple crossing this boundary pays real marshalling work (wire
    serialization + parse).  Fetches are batched by a row-prefetch setting
    (the paper notes Oracle JDBC's row prefetch affects `TRANSFER^M`), and
    each round trip additionally costs a configurable CPU spin standing in
    for network latency. *)

open Tango_rel
open Tango_sql

type t

val default_row_prefetch : int
(** 10 — Oracle JDBC's historical default. *)

val default_roundtrip_spin : int

val connect : ?row_prefetch:int -> ?roundtrip_spin:int -> Database.t -> t

val database : t -> Database.t
val set_row_prefetch : t -> int -> unit
val row_prefetch : t -> int
val set_roundtrip_spin : t -> int -> unit

val reset_counters : t -> unit
val roundtrips : t -> int
val tuples_shipped : t -> int

val bytes_shipped : t -> int
(** Wire bytes marshalled across the boundary since the last reset. *)

(** A server-side cursor being drained by the middleware; rows stream to
    the client in prefetch-sized batches as the cursor advances.  Each
    cursor accounts the round trips, tuples and wire bytes shipped on its
    behalf. *)
type cursor

val execute_query : t -> string -> cursor
val execute_query_ast : t -> Ast.query -> cursor
val cursor_schema : cursor -> Schema.t
val cursor_roundtrips : cursor -> int
val cursor_tuples : cursor -> int
val cursor_bytes : cursor -> int
val fetch : cursor -> Tuple.t option

val fetch_batch : cursor -> Tuple.t array option
(** The buffered prefetch rows as one array ([None] at exhaustion),
    refilling over the wire when the buffer is empty.  Interleaves freely
    with {!fetch} and accounts exactly the same round trips / tuples /
    bytes for the same rows. *)

val fetch_all : cursor -> Relation.t

val execute_update : t -> string -> int

val bulk_load : t -> table:string -> Schema.t -> Tuple.t Seq.t -> string
(** Direct-path bulk load — the SQL*Loader analogue used by `TRANSFER^D`:
    creates [table] (schema unqualified) and streams tuples to the server
    in prefetch-sized batches.  Returns the table name. *)
