(** A fingerprint-keyed LRU cache for optimized plans.

    Keys are derived from the {e normalized SQL text} — whitespace
    collapsed and case folded outside single-quoted literals — so two
    spellings of the same query hit regardless of keyword case, while a
    change to any {e literal} misses.  Entries come in two flavors,
    distinguished by how the caller keys them:

    - {e exact} entries are keyed on the full query text, literals
      included: a cached physical plan carries its literals and must not
      be reused under different ones;
    - {e template} entries are keyed on parameterized text ([$n] markers
      in place of literals — explicit bind variables or the
      auto-parameterizer's output): one entry serves every binding, and
      the stored plan is instantiated at bind time.

    The cache itself is agnostic — it stores what it is given under the
    key it is given — but lookups declare their {!kind} so hits are
    classified (template vs exact) in both per-cache {!stats} and the
    process-wide [cache.*] counters of {!Tango_obs}.

    Invalidation is explicit ({!invalidate_all}) and coarse: statistics
    refreshes (ANALYZE), schema DDL, and adaptive cost-factor refits all
    flush the whole cache, since any of them can change which plan is
    best for {e every} cached query. *)

type 'a t

(** How a lookup's key was built: [Template] = parameterized text with
    [$n] slots; [Exact] = full text, literals included. *)
type kind = Exact | Template

val create : ?capacity:int -> unit -> 'a t
(** LRU cache holding at most [capacity] entries (default 128; a
    capacity below 1 is clamped to 1). *)

val capacity : 'a t -> int

val normalize_sql : string -> string
(** Collapse runs of whitespace to single spaces, trim, and fold case —
    except inside single-quoted literals, which are copied verbatim
    (their spelling and whitespace are significant).  This is the text
    the key is computed from, and what {!find} compares against to
    guard hash collisions. *)

val key_of_sql : string -> string
(** 64-bit FNV-1a hash of the normalized SQL, as 16 hex digits. *)

val find : ?kind:kind -> 'a t -> sql:string -> 'a option
(** Look up the plan cached for [sql]; a hit refreshes its LRU position
    and is classified under [kind] (default [Exact]).  Collisions are
    guarded by comparing the stored normalized text. *)

val add : 'a t -> sql:string -> 'a -> unit
(** Insert (or replace) the entry for [sql], evicting the least recently
    used entry when at capacity. *)

val note_replan : 'a t -> sql:string -> unit
(** Record that the sensitivity guard re-optimized under the entry for
    [sql] (a parameter region the generic plan was bad for).  Feeds the
    [replans]/[max_replans] stats the watchdog's parameter-sensitivity
    signal reads.  No-op when the entry is gone. *)

val invalidate_all : ?reason:string -> 'a t -> unit
(** Drop every entry.  [reason] (e.g. ["analyze"], ["ddl"],
    ["cost-refit"]) is recorded for {!stats}. *)

val length : 'a t -> int

(** Per-cache counters since [create]. *)
type stats = {
  hits : int;  (** total: template + exact *)
  template_hits : int;
  exact_hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** number of {!invalidate_all} calls *)
  replans : int;  (** {!note_replan} calls that found their entry *)
  max_replans : int;
      (** high-water replan count of any single entry — an entry
          accumulating these is a parameter-sensitive plan *)
  last_invalidation : string option;  (** reason of the most recent one *)
}

val stats : 'a t -> stats
