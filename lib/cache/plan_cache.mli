(** A fingerprint-keyed LRU cache for optimized plans.

    Keys are derived from the {e normalized SQL text} — whitespace
    collapsed, nothing else touched — so two submissions of the same query
    string hit, while a change to any literal misses (unlike the
    structural plan fingerprints of [Tango_profile], which strip
    literals: a cached physical plan carries its literals and must not be
    reused under different ones).

    The cache is parametric in the entry type: the middleware stores its
    optimized physical plan together with verify diagnostics and the
    database schema generation it was planned against.

    Invalidation is explicit ({!invalidate_all}) and coarse: statistics
    refreshes (ANALYZE), schema DDL, and adaptive cost-factor refits all
    flush the whole cache, since any of them can change which plan is
    best for {e every} cached query.

    Hits, misses, evictions and invalidations are mirrored to the
    process-wide [cache.*] counters of {!Tango_obs} (and hence to the
    Prometheus endpoint). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** LRU cache holding at most [capacity] entries (default 128; a
    capacity below 1 is clamped to 1). *)

val capacity : 'a t -> int

val normalize_sql : string -> string
(** Collapse runs of whitespace to single spaces and trim; case is
    preserved, and single-quoted literals are copied verbatim (their
    whitespace is significant).  This is the text the key is computed
    from, and what {!find} compares against to guard hash collisions. *)

val key_of_sql : string -> string
(** 64-bit FNV-1a hash of the normalized SQL, as 16 hex digits. *)

val find : 'a t -> sql:string -> 'a option
(** Look up the plan cached for [sql]; a hit refreshes its LRU position.
    Collisions are guarded by comparing the stored normalized text. *)

val add : 'a t -> sql:string -> 'a -> unit
(** Insert (or replace) the entry for [sql], evicting the least recently
    used entry when at capacity. *)

val invalidate_all : ?reason:string -> 'a t -> unit
(** Drop every entry.  [reason] (e.g. ["analyze"], ["ddl"],
    ["cost-refit"]) is recorded for {!stats}. *)

val length : 'a t -> int

(** Per-cache counters since [create]. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** number of {!invalidate_all} calls *)
  last_invalidation : string option;  (** reason of the most recent one *)
}

val stats : 'a t -> stats
