(** Fingerprint-keyed LRU plan cache.  See the interface for semantics.

    Domain safety: every operation on a cache instance — lookup, insert,
    invalidation, replan notes, stats — runs inside the instance's
    {!Tango_obs.Dsync} critical section, so one cache can be shared by a
    multi-domain accept pool.  Key computation (normalize + hash) is pure
    and happens outside the lock. *)

module Dsync = Tango_obs.Dsync

(* process-wide mirrors (aggregated across caches; see Tango_obs) *)
let c_hits = Tango_obs.Counter.make "cache.hits"
let c_template_hits = Tango_obs.Counter.make "cache.template_hits"
let c_exact_hits = Tango_obs.Counter.make "cache.exact_hits"
let c_misses = Tango_obs.Counter.make "cache.misses"
let c_evictions = Tango_obs.Counter.make "cache.evictions"
let c_invalidations = Tango_obs.Counter.make "cache.invalidations"
let c_replans = Tango_obs.Counter.make "cache.replans"

let normalize_sql (sql : string) : string =
  let buf = Buffer.create (String.length sql) in
  let pending_space = ref false in
  let in_string = ref false in
  String.iter
    (fun ch ->
      if !in_string then begin
        (* copy quoted literals verbatim; a '' escape just toggles twice *)
        if ch = '\'' then in_string := false;
        Buffer.add_char buf ch
      end
      else
        match ch with
        | ' ' | '\t' | '\n' | '\r' -> pending_space := true
        | c ->
            if !pending_space && Buffer.length buf > 0 then
              Buffer.add_char buf ' ';
            pending_space := false;
            if c = '\'' then in_string := true;
            (* keywords (and unquoted identifiers, which SQL folds) are
               case-insensitive; only quoted literals keep their case *)
            Buffer.add_char buf (Char.uppercase_ascii c))
    sql;
  Buffer.contents buf

(* 64-bit FNV-1a *)
let key_of_sql (sql : string) : string =
  let normalized = normalize_sql sql in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    normalized;
  Printf.sprintf "%016Lx" !h

type kind = Exact | Template

type 'a entry = {
  normalized : string;  (* collision guard *)
  value : 'a;
  mutable last_used : int;  (* tick of the most recent find/add *)
  mutable replans : int;  (* sensitivity-guard re-optimizations *)
}

type stats = {
  hits : int;
  template_hits : int;
  exact_hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  replans : int;
  max_replans : int;
  last_invalidation : string option;
}

type 'a t = {
  capacity : int;
  lock : Dsync.lock;  (** guards every mutable field below *)
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable template_hits : int;
  mutable exact_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable replans : int;
  mutable max_replans : int;
  mutable last_invalidation : string option;
}

let create ?(capacity = 128) () =
  {
    capacity = max 1 capacity;
    lock = Dsync.named_lock "cache.plan_cache";
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    template_hits = 0;
    exact_hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    replans = 0;
    max_replans = 0;
    last_invalidation = None;
  }

let capacity c = c.capacity
let length c = Dsync.protect c.lock (fun () -> Hashtbl.length c.table)

let find ?(kind = Exact) c ~sql =
  let normalized = normalize_sql sql in
  let key = key_of_sql sql in
  let result =
    Dsync.protect c.lock (fun () ->
        match Hashtbl.find_opt c.table key with
        | Some entry when String.equal entry.normalized normalized ->
            c.tick <- c.tick + 1;
            entry.last_used <- c.tick;
            c.hits <- c.hits + 1;
            (match kind with
            | Template -> c.template_hits <- c.template_hits + 1
            | Exact -> c.exact_hits <- c.exact_hits + 1);
            Some entry.value
        | _ ->
            c.misses <- c.misses + 1;
            None)
  in
  (match result with
  | Some _ ->
      Tango_obs.Counter.incr c_hits;
      Tango_obs.Counter.incr
        (match kind with Template -> c_template_hits | Exact -> c_exact_hits)
  | None -> Tango_obs.Counter.incr c_misses);
  result

let add c ~sql value =
  let key = key_of_sql sql in
  let normalized = normalize_sql sql in
  let evicted =
    Dsync.protect c.lock (fun () ->
        let evicted =
          if
            (not (Hashtbl.mem c.table key))
            && Hashtbl.length c.table >= c.capacity
          then begin
            (* evict the least-recently-used entry (smallest tick) *)
            let victim = ref None in
            Hashtbl.iter
              (fun key entry ->
                match !victim with
                | Some (_, best) when best.last_used <= entry.last_used -> ()
                | _ -> victim := Some (key, entry))
              c.table;
            match !victim with
            | None -> false
            | Some (key, _) ->
                Hashtbl.remove c.table key;
                c.evictions <- c.evictions + 1;
                true
          end
          else false
        in
        c.tick <- c.tick + 1;
        (* replacing an entry for the same statement (the sensitivity
           guard refreshing its bucket table) keeps its replan count *)
        let replans =
          match Hashtbl.find_opt c.table key with
          | Some prev when String.equal prev.normalized normalized ->
              prev.replans
          | _ -> 0
        in
        let entry = { normalized; value; last_used = c.tick; replans } in
        Hashtbl.replace c.table key entry;
        evicted)
  in
  if evicted then Tango_obs.Counter.incr c_evictions

let note_replan c ~sql =
  let normalized = normalize_sql sql in
  let key = key_of_sql sql in
  Dsync.protect c.lock (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some entry when String.equal entry.normalized normalized ->
          entry.replans <- entry.replans + 1;
          c.replans <- c.replans + 1;
          if entry.replans > c.max_replans then
            c.max_replans <- entry.replans
      | _ -> ());
  Tango_obs.Counter.incr c_replans

let invalidate_all ?(reason = "invalidate") c =
  Dsync.protect c.lock (fun () ->
      Hashtbl.reset c.table;
      c.invalidations <- c.invalidations + 1;
      c.last_invalidation <- Some reason);
  Tango_obs.Counter.incr c_invalidations

let stats c =
  Dsync.protect c.lock (fun () ->
      {
        hits = c.hits;
        template_hits = c.template_hits;
        exact_hits = c.exact_hits;
        misses = c.misses;
        evictions = c.evictions;
        invalidations = c.invalidations;
        replans = c.replans;
        max_replans = c.max_replans;
        last_invalidation = c.last_invalidation;
      })
