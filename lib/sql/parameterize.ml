(** Token-level auto-parameterization: fold the constant literals of an
    incoming query into bind variables so literal-varying repetitions of
    the same query shape share one plan-cache template.

    Working on the token stream (not the AST) keeps the template text
    canonical for free — keywords come back uppercased and whitespace
    collapses to single spaces — and guarantees the rewrite cannot
    change expression structure: each [INT]/[FLOAT]/[STRING] token (and
    each [DATE 'lit'] pair) is replaced by the next [$n] marker, and
    everything else is re-emitted verbatim.  [TRUE], [FALSE] and [NULL]
    are keywords, not literal tokens, so they stay inline — their value
    can change plan shape (NULL comparisons) and they carry no
    cache-fragmentation risk. *)

open Tango_rel

type extraction = {
  template : string;
      (** the query with literals replaced by [$1..$n], re-rendered
          canonically (uppercase keywords, single spaces) *)
  values : Value.t list;  (** the extracted literals, in [$n] order *)
}

let escape_string s =
  "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"

let token_text = function
  | Lexer.IDENT s -> s
  | Lexer.INT i -> string_of_int i
  | Lexer.FLOAT f -> Printf.sprintf "%.17g" f
  | Lexer.STRING s -> escape_string s
  | Lexer.KW k -> k
  | Lexer.SYM s -> s
  | Lexer.PARAM 0 -> "?"
  | Lexer.PARAM n -> "$" ^ string_of_int n
  | Lexer.EOF -> ""

(** Auto-parameterize a query.  Returns [None] when there is nothing to
    do: the text does not lex, is not a query (only SELECT shapes are
    safe — INSERT VALUES must stay literal), already carries explicit
    bind variables (the client is parameterizing; don't second-guess
    its numbering), or contains no literals. *)
let extract (sql : string) : extraction option =
  match Lexer.tokenize sql with
  | exception Lexer.Lex_error _ -> None
  | toks ->
      let is_query =
        match toks with
        | (Lexer.KW ("SELECT" | "VALIDTIME") | Lexer.SYM "(") :: _ -> true
        | _ -> false
      in
      let has_explicit_param =
        List.exists (function Lexer.PARAM _ -> true | _ -> false) toks
      in
      if (not is_query) || has_explicit_param then None
      else begin
        let buf = Buffer.create (String.length sql) in
        let values = ref [] in
        let count = ref 0 in
        let emit s =
          if Buffer.length buf > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf s
        in
        let param v =
          incr count;
          values := v :: !values;
          emit ("$" ^ string_of_int !count)
        in
        let rec go = function
          | [] -> ()
          | Lexer.KW "DATE" :: Lexer.STRING s :: rest -> (
              match Tango_temporal.Chronon.of_string s with
              | d ->
                  param (Value.Date d);
                  go rest
              | exception _ ->
                  (* not a date after all; keep the pair verbatim and
                     let the parser produce its own error *)
                  emit "DATE";
                  emit (escape_string s);
                  go rest)
          | Lexer.INT i :: rest ->
              param (Value.Int i);
              go rest
          | Lexer.FLOAT f :: rest ->
              param (Value.Float f);
              go rest
          | Lexer.STRING s :: rest ->
              param (Value.Str s);
              go rest
          | Lexer.EOF :: rest -> go rest
          | t :: rest ->
              emit (token_text t);
              go rest
        in
        go toks;
        if !count = 0 then None
        else Some { template = Buffer.contents buf; values = List.rev !values }
      end

(* Untyped surfaces (CLI flags) carry parameter values as text; give
   each spelling its natural type, falling back to a string. *)
let value_of_string (s : string) : Value.t =
  match int_of_string_opt s with
  | Some i -> Value.Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> (
          match String.lowercase_ascii s with
          | "true" -> Value.Bool true
          | "false" -> Value.Bool false
          | "null" -> Value.Null
          | _ -> (
              match Tango_temporal.Chronon.of_string s with
              | c -> Value.Date c
              | exception _ -> Value.Str s)))
