(** Hand-written SQL lexer.  Keywords are case-insensitive; identifiers
    (which may contain dots for qualification) keep their spelling. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercase keyword *)
  | SYM of string  (** punctuation / operator *)
  | PARAM of int  (** bind variable: [$n] carries n; a bare [?] carries 0 *)
  | EOF

exception Lex_error of string

val keywords : string list
val is_keyword : string -> bool

val tokenize : string -> token list
(** Tokenize a statement; the result ends with {!EOF}.  Raises
    {!Lex_error} on malformed input (unterminated strings, stray
    characters). *)

val token_to_string : token -> string
