(** Recursive-descent parser for the SQL subset (see {!Ast}).

    Precedence, loosest first: OR, AND, NOT, comparison/BETWEEN/IN/IS,
    additive, multiplicative, unary minus, primary. *)

open Tango_rel

exception Parse_error of string

type state = {
  mutable toks : Lexer.token list;
  mutable next_param : int;  (** next number for a bare [?] marker *)
}

let error st msg =
  let next =
    match st.toks with t :: _ -> Lexer.token_to_string t | [] -> "<none>"
  in
  raise (Parse_error (Printf.sprintf "%s (next token: %s)" msg next))

let peek st = match st.toks with t :: _ -> t | [] -> Lexer.EOF
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let eat_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | _ -> error st ("expected " ^ kw)

let eat_sym st sym =
  match peek st with
  | Lexer.SYM s when s = sym -> advance st
  | _ -> error st ("expected '" ^ sym ^ "'")

let try_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw ->
      advance st;
      true
  | _ -> false

let try_sym st sym =
  match peek st with
  | Lexer.SYM s when s = sym ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> error st "expected identifier"

(* Split a possibly qualified name "A.B" into Col (Some "A", "B"). *)
let col_of_ident name =
  match String.rindex_opt name '.' with
  | None -> Ast.Col (None, name)
  | Some i ->
      Ast.Col
        ( Some (String.sub name 0 i),
          String.sub name (i + 1) (String.length name - i - 1) )

let aggfun_of_kw = function
  | "COUNT" -> Some Ast.Count
  | "SUM" -> Some Ast.Sum
  | "AVG" -> Some Ast.Avg
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | _ -> None

let rec parse_query st : Ast.query =
  let left = parse_select st in
  match peek st with
  | Lexer.KW "UNION" ->
      advance st;
      if try_kw st "ALL" then Ast.Union_all (left, parse_query st)
      else Ast.Union (left, parse_query st)
  | _ -> left

and parse_select st : Ast.query =
  let validtime = try_kw st "VALIDTIME" in
  let coalesce = validtime && try_kw st "COALESCE" in
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  let items = parse_select_items st in
  eat_kw st "FROM";
  let from = parse_table_refs st in
  let where = if try_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if try_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      parse_order_items st
    end
    else []
  in
  Ast.Select
    { validtime; coalesce; distinct; items; from; where; group_by; having;
      order_by }

and parse_select_items st =
  let item () =
    if try_sym st "*" then Ast.Star
    else begin
      let e = parse_expr st in
      let alias =
        if try_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Lexer.IDENT a
            when not (String.contains a '.') ->
              advance st;
              Some a
          | _ -> None
      in
      Ast.Expr (e, alias)
    end
  in
  let first = item () in
  let rec more acc =
    if try_sym st "," then more (item () :: acc) else List.rev acc
  in
  more [ first ]

and parse_table_refs st =
  let table_ref () =
    if try_sym st "(" then begin
      let q = parse_query st in
      eat_sym st ")";
      ignore (try_kw st "AS");
      let alias = ident st in
      Ast.Derived (q, alias)
    end
    else begin
      let name = ident st in
      let alias =
        match peek st with
        | Lexer.IDENT a when not (String.contains a '.') ->
            advance st;
            Some a
        | Lexer.KW "AS" ->
            advance st;
            Some (ident st)
        | _ -> None
      in
      Ast.Table (name, alias)
    end
  in
  let first = table_ref () in
  let rec more acc =
    if try_sym st "," then more (table_ref () :: acc) else List.rev acc
  in
  more [ first ]

and parse_order_items st =
  let item () =
    let e = parse_expr st in
    let asc =
      if try_kw st "DESC" then false
      else begin
        ignore (try_kw st "ASC");
        true
      end
    in
    (e, asc)
  in
  let first = item () in
  let rec more acc =
    if try_sym st "," then more (item () :: acc) else List.rev acc
  in
  more [ first ]

and parse_expr_list st =
  let first = parse_expr st in
  let rec more acc =
    if try_sym st "," then more (parse_expr st :: acc) else List.rev acc
  in
  more [ first ]

and parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if try_kw st "OR" then Ast.Binop (Ast.Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_kw st "AND" then Ast.Binop (Ast.And, left, parse_and st) else left

and parse_not st =
  if try_kw st "NOT" then Ast.Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  match peek st with
  | Lexer.SYM "=" ->
      advance st;
      Ast.Binop (Ast.Eq, left, parse_additive st)
  | Lexer.SYM "<>" ->
      advance st;
      Ast.Binop (Ast.Neq, left, parse_additive st)
  | Lexer.SYM "<" ->
      advance st;
      Ast.Binop (Ast.Lt, left, parse_additive st)
  | Lexer.SYM "<=" ->
      advance st;
      Ast.Binop (Ast.Le, left, parse_additive st)
  | Lexer.SYM ">" ->
      advance st;
      Ast.Binop (Ast.Gt, left, parse_additive st)
  | Lexer.SYM ">=" ->
      advance st;
      Ast.Binop (Ast.Ge, left, parse_additive st)
  | Lexer.KW "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      eat_kw st "AND";
      let hi = parse_additive st in
      Ast.Between (left, lo, hi)
  | Lexer.KW "IS" ->
      advance st;
      if try_kw st "NOT" then begin
        eat_kw st "NULL";
        Ast.Is_not_null left
      end
      else begin
        eat_kw st "NULL";
        Ast.Is_null left
      end
  | Lexer.KW "IN" ->
      advance st;
      eat_sym st "(";
      let q = parse_query st in
      eat_sym st ")";
      Ast.In_subquery (left, q)
  | _ -> left

and parse_additive st =
  let left = parse_multiplicative st in
  let rec go acc =
    if try_sym st "+" then
      go (Ast.Binop (Ast.Add, acc, parse_multiplicative st))
    else if try_sym st "-" then
      go (Ast.Binop (Ast.Sub, acc, parse_multiplicative st))
    else acc
  in
  go left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec go acc =
    if try_sym st "*" then go (Ast.Binop (Ast.Mul, acc, parse_unary st))
    else if try_sym st "/" then go (Ast.Binop (Ast.Div, acc, parse_unary st))
    else acc
  in
  go left

and parse_unary st =
  if try_sym st "-" then
    Ast.Binop (Ast.Sub, Ast.Lit (Value.Int 0), parse_primary st)
  else parse_primary st

and parse_arg_list st =
  eat_sym st "(";
  let args = parse_expr_list st in
  eat_sym st ")";
  args

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Ast.Lit (Value.Int i)
  | Lexer.FLOAT f ->
      advance st;
      Ast.Lit (Value.Float f)
  | Lexer.STRING s ->
      advance st;
      Ast.Lit (Value.Str s)
  | Lexer.KW "NULL" ->
      advance st;
      Ast.Lit Value.Null
  | Lexer.KW "TRUE" ->
      advance st;
      Ast.Lit (Value.Bool true)
  | Lexer.KW "FALSE" ->
      advance st;
      Ast.Lit (Value.Bool false)
  | Lexer.KW "DATE" -> (
      advance st;
      match peek st with
      | Lexer.STRING s ->
          advance st;
          Ast.Lit (Value.Date (Tango_temporal.Chronon.of_string s))
      | _ -> error st "expected date literal string after DATE")
  | Lexer.KW "EXISTS" ->
      advance st;
      eat_sym st "(";
      let q = parse_query st in
      eat_sym st ")";
      Ast.Exists q
  | Lexer.KW "GREATEST" ->
      advance st;
      Ast.Greatest (parse_arg_list st)
  | Lexer.KW "LEAST" ->
      advance st;
      Ast.Least (parse_arg_list st)
  | Lexer.KW kw when aggfun_of_kw kw <> None -> (
      advance st;
      eat_sym st "(";
      if try_sym st "*" then begin
        eat_sym st ")";
        match kw with
        | "COUNT" -> Ast.Agg (Ast.Count_star, None)
        | _ -> error st (kw ^ "(*) is only valid for COUNT")
      end
      else begin
        let distinct = try_kw st "DISTINCT" in
        if distinct then error st "aggregate DISTINCT is not supported";
        let e = parse_expr st in
        eat_sym st ")";
        match aggfun_of_kw kw with
        | Some f -> Ast.Agg (f, Some e)
        | None -> assert false
      end)
  | Lexer.SYM "(" -> (
      (* parenthesized expression or scalar subquery *)
      match peek2 st with
      | Lexer.KW "SELECT" | Lexer.KW "VALIDTIME" ->
          advance st;
          let q = parse_query st in
          eat_sym st ")";
          Ast.Scalar_subquery q
      | _ ->
          advance st;
          let e = parse_expr st in
          eat_sym st ")";
          e)
  | Lexer.IDENT name ->
      advance st;
      col_of_ident name
  | Lexer.PARAM 0 ->
      advance st;
      let n = st.next_param in
      st.next_param <- n + 1;
      Ast.Param n
  | Lexer.PARAM n when n > 0 ->
      advance st;
      Ast.Param n
  | Lexer.PARAM _ -> error st "parameter numbers start at $1"
  | _ -> error st "expected expression"

let parse_column_defs st =
  eat_sym st "(";
  let def () =
    let name = ident st in
    let ty =
      match peek st with
      | Lexer.IDENT t ->
          advance st;
          Value.dtype_of_name t
      | Lexer.KW "DATE" ->
          advance st;
          Value.TDate
      | _ -> error st "expected column type"
    in
    (* Optional length, e.g. VARCHAR(32): parsed and ignored. *)
    if try_sym st "(" then begin
      (match peek st with
      | Lexer.INT _ -> advance st
      | _ -> error st "expected length");
      eat_sym st ")"
    end;
    { Ast.col_name = name; col_type = ty }
  in
  let first = def () in
  let rec more acc =
    if try_sym st "," then more (def () :: acc) else List.rev acc
  in
  let defs = more [ first ] in
  eat_sym st ")";
  defs

let parse_statement st : Ast.statement =
  match peek st with
  | Lexer.KW "SELECT" | Lexer.KW "VALIDTIME" -> Ast.Query (parse_query st)
  | Lexer.SYM "(" -> Ast.Query (parse_query st)
  | Lexer.KW "CREATE" ->
      advance st;
      eat_kw st "TABLE";
      let name = ident st in
      Ast.Create_table (name, parse_column_defs st)
  | Lexer.KW "DROP" ->
      advance st;
      eat_kw st "TABLE";
      Ast.Drop_table (ident st)
  | Lexer.KW "INSERT" ->
      advance st;
      eat_kw st "INTO";
      let name = ident st in
      eat_kw st "VALUES";
      let row () =
        eat_sym st "(";
        let vs =
          List.map
            (function
              | Ast.Lit v -> v
              | _ -> error st "INSERT VALUES must be literals")
            (parse_expr_list st)
        in
        eat_sym st ")";
        vs
      in
      let first = row () in
      let rec more acc =
        if try_sym st "," then more (row () :: acc) else List.rev acc
      in
      Ast.Insert (name, more [ first ])
  | _ -> error st "expected statement"

(** Parse a complete SQL statement (a trailing [;] is allowed). *)
let statement (sql : string) : Ast.statement =
  let st = { toks = Lexer.tokenize sql; next_param = 1 } in
  let stmt = parse_statement st in
  ignore (try_sym st ";");
  (match peek st with
  | Lexer.EOF -> ()
  | t ->
      raise
        (Parse_error ("trailing input: " ^ Lexer.token_to_string t)));
  stmt

(** Parse a query (SELECT/UNION). *)
let query (sql : string) : Ast.query =
  match statement sql with
  | Ast.Query q -> q
  | _ -> raise (Parse_error "expected a SELECT query")
