(** Render SQL ASTs back to text.  Used by the Translator-To-SQL (the
    middleware ships SQL strings to the DBMS, as TANGO ships them over JDBC)
    and by error messages. *)

open Tango_rel

let binop_name = function
  | Ast.Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let value_to_sql = function
  | Value.Null -> "NULL"
  | Value.Bool b -> if b then "TRUE" else "FALSE"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s ->
      "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Value.Date d -> "DATE '" ^ Tango_temporal.Chronon.to_string d ^ "'"

(* Precedence levels mirroring the parser, loosest first:
   0 OR, 1 AND, 2 NOT, 3 comparison/IS/BETWEEN/IN, 4 additive,
   5 multiplicative, 6 primary.  Operands are parenthesized when their own
   level is below what their position requires, so printing then parsing is
   the identity on arbitrary ASTs (property-tested). *)
let precedence (e : Ast.expr) =
  match e with
  | Ast.Binop (Or, _, _) -> 0
  | Ast.Binop (And, _, _) -> 1
  | Ast.Not _ -> 2
  | Ast.Binop ((Eq | Neq | Lt | Le | Gt | Ge), _, _)
  | Ast.Is_null _ | Ast.Is_not_null _ | Ast.Between _ | Ast.In_subquery _ -> 3
  | Ast.Binop ((Add | Sub), _, _) -> 4
  | Ast.Binop ((Mul | Div), _, _) -> 5
  | Ast.Lit _ | Ast.Param _ | Ast.Col _ | Ast.Greatest _ | Ast.Least _
  | Ast.Agg _ | Ast.Scalar_subquery _ | Ast.Exists _ -> 6

let rec expr_to_sql (e : Ast.expr) =
  (* [at level sub]: render [sub] as an operand requiring at least
     [level]. *)
  let at level sub =
    let s = expr_to_sql sub in
    if precedence sub < level then "(" ^ s ^ ")" else s
  in
  match e with
  | Lit v -> value_to_sql v
  | Param n -> "$" ^ string_of_int n
  | Col (None, c) -> c
  | Col (Some q, c) -> q ^ "." ^ c
  | Binop (Or, a, b) ->
      (* the parser right-nests OR/AND chains; the left operand prints one
         level tighter so left-nested trees round-trip *)
      Printf.sprintf "%s OR %s" (at 1 a) (at 0 b)
  | Binop (And, a, b) -> Printf.sprintf "%s AND %s" (at 2 a) (at 1 b)
  | Binop (((Add | Sub) as op), a, b) ->
      (* additive/multiplicative chains are left-associative in the parser *)
      Printf.sprintf "%s %s %s" (at 4 a) (binop_name op) (at 5 b)
  | Binop (((Mul | Div) as op), a, b) ->
      Printf.sprintf "%s %s %s" (at 5 a) (binop_name op) (at 6 b)
  | Binop (op, a, b) ->
      (* comparisons do not chain: both operands at additive level *)
      Printf.sprintf "%s %s %s" (at 4 a) (binop_name op) (at 4 b)
  | Not e -> "NOT " ^ at 2 e
  | Is_null e -> at 4 e ^ " IS NULL"
  | Is_not_null e -> at 4 e ^ " IS NOT NULL"
  | Between (e, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (at 4 e) (at 4 lo) (at 4 hi)
  | Greatest es ->
      "GREATEST(" ^ String.concat ", " (List.map expr_to_sql es) ^ ")"
  | Least es -> "LEAST(" ^ String.concat ", " (List.map expr_to_sql es) ^ ")"
  | Agg (Count_star, _) -> "COUNT(*)"
  | Agg (f, Some e) -> Ast.aggfun_name f ^ "(" ^ expr_to_sql e ^ ")"
  | Agg (f, None) -> Ast.aggfun_name f ^ "(*)"
  | Scalar_subquery q -> "(" ^ query_to_sql q ^ ")"
  | In_subquery (e, q) -> at 4 e ^ " IN (" ^ query_to_sql q ^ ")"
  | Exists q -> "EXISTS (" ^ query_to_sql q ^ ")"

and item_to_sql = function
  | Ast.Star -> "*"
  | Ast.Expr (e, None) -> expr_to_sql e
  | Ast.Expr (e, Some a) -> expr_to_sql e ^ " AS " ^ a

and table_ref_to_sql = function
  | Ast.Table (n, None) -> n
  | Ast.Table (n, Some a) -> n ^ " " ^ a
  | Ast.Derived (q, a) -> "(" ^ query_to_sql q ^ ") " ^ a

and query_to_sql = function
  | Ast.Union (a, b) -> query_to_sql a ^ " UNION " ^ query_to_sql b
  | Ast.Union_all (a, b) -> query_to_sql a ^ " UNION ALL " ^ query_to_sql b
  | Ast.Select s ->
      let buf = Buffer.create 128 in
      if s.validtime then Buffer.add_string buf "VALIDTIME ";
      if s.coalesce then Buffer.add_string buf "COALESCE ";
      Buffer.add_string buf "SELECT ";
      if s.distinct then Buffer.add_string buf "DISTINCT ";
      Buffer.add_string buf
        (String.concat ", " (List.map item_to_sql s.items));
      Buffer.add_string buf " FROM ";
      Buffer.add_string buf
        (String.concat ", " (List.map table_ref_to_sql s.from));
      (match s.where with
      | None -> ()
      | Some w -> Buffer.add_string buf (" WHERE " ^ expr_to_sql w));
      (match s.group_by with
      | [] -> ()
      | gs ->
          Buffer.add_string buf
            (" GROUP BY " ^ String.concat ", " (List.map expr_to_sql gs)));
      (match s.having with
      | None -> ()
      | Some h -> Buffer.add_string buf (" HAVING " ^ expr_to_sql h));
      (match s.order_by with
      | [] -> ()
      | os ->
          Buffer.add_string buf
            (" ORDER BY "
            ^ String.concat ", "
                (List.map
                   (fun (e, asc) ->
                     expr_to_sql e ^ if asc then "" else " DESC")
                   os)));
      Buffer.contents buf

let statement_to_sql = function
  | Ast.Query q -> query_to_sql q
  | Ast.Create_table (name, cols) ->
      Printf.sprintf "CREATE TABLE %s (%s)" name
        (String.concat ", "
           (List.map
              (fun c ->
                c.Ast.col_name ^ " " ^ Value.dtype_name c.Ast.col_type)
              cols))
  | Ast.Drop_table name -> "DROP TABLE " ^ name
  | Ast.Insert (name, rows) ->
      Printf.sprintf "INSERT INTO %s VALUES %s" name
        (String.concat ", "
           (List.map
              (fun row ->
                "(" ^ String.concat ", " (List.map value_to_sql row) ^ ")")
              rows))
