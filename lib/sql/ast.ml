(** Abstract syntax of the SQL subset understood by the simulated DBMS.

    The subset covers what TANGO's Translator-To-SQL emits and what the
    experiments need: SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER BY, derived
    tables, UNION [ALL], correlated scalar subqueries, aggregate functions,
    GREATEST/LEAST, IS [NOT] NULL, BETWEEN, and the DDL/DML used by the
    transfer operators (CREATE TABLE, INSERT, DROP TABLE). *)

open Tango_rel

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type aggfun = Count_star | Count | Sum | Avg | Min | Max

let aggfun_name = function
  | Count_star | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

type expr =
  | Lit of Value.t
  | Param of int
      (** bind variable, 1-based ([$n]; bare [?] markers are numbered
          left-to-right by the parser) *)
  | Col of string option * string  (** optional qualifier, column name *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | Between of expr * expr * expr  (** e BETWEEN lo AND hi *)
  | Greatest of expr list
  | Least of expr list
  | Agg of aggfun * expr option  (** [Agg (Count_star, None)] is [COUNT(STAR)] *)
  | Scalar_subquery of query  (** correlated scalar subquery *)
  | In_subquery of expr * query
  | Exists of query

and select_item =
  | Star
  | Expr of expr * string option  (** expression with optional AS alias *)

and table_ref =
  | Table of string * string option  (** table name, optional alias *)
  | Derived of query * string  (** (subquery) alias *)

and query =
  | Select of select
  | Union of query * query  (** UNION (set semantics: duplicates removed) *)
  | Union_all of query * query

and select = {
  validtime : bool;
      (** temporal-SQL marker: sequenced valid-time semantics.  The DBMS
          itself rejects VALIDTIME queries — evaluating them is the
          middleware's job ({!Tango_tsql}). *)
  coalesce : bool;
      (** temporal-SQL marker ([VALIDTIME COALESCE SELECT]): coalesce
          value-equivalent result tuples with adjacent/overlapping
          periods *)
  distinct : bool;
  items : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * bool) list;  (** expr, ascending? *)
}

type column_def = { col_name : string; col_type : Value.dtype }

type statement =
  | Query of query
  | Create_table of string * column_def list
  | Drop_table of string
  | Insert of string * Value.t list list  (** INSERT INTO t VALUES rows *)

let select ?(validtime = false) ?(coalesce = false) ?(distinct = false)
    ?(where = None) ?(group_by = []) ?(having = None) ?(order_by = []) items
    from =
  Select
    { validtime; coalesce; distinct; items; from; where; group_by; having;
      order_by }

(** Conjunction of a list of predicates; [None] when empty. *)
let conj = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc p -> Binop (And, acc, p)) e rest)

(** Split a predicate into its top-level conjuncts. *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

(** Column references appearing in an expression (ignoring subqueries, whose
    references are resolved in their own scope or via correlation). *)
let rec columns = function
  | Lit _ | Param _ -> []
  | Col (q, c) -> [ (q, c) ]
  | Binop (_, a, b) -> columns a @ columns b
  | Not e | Is_null e | Is_not_null e -> columns e
  | Between (a, b, c) -> columns a @ columns b @ columns c
  | Greatest es | Least es -> List.concat_map columns es
  | Agg (_, Some e) -> columns e
  | Agg (_, None) -> []
  | Scalar_subquery _ | Exists _ -> []
  | In_subquery (e, _) -> columns e

(** Replace every [Param n] by [f n], recursing into subqueries.  Used to
    close a plan template over its bound values ([f n = Lit values.(n-1)]). *)
let rec map_params f e =
  match e with
  | Lit _ | Col _ -> e
  | Param n -> f n
  | Binop (op, a, b) -> Binop (op, map_params f a, map_params f b)
  | Not e -> Not (map_params f e)
  | Is_null e -> Is_null (map_params f e)
  | Is_not_null e -> Is_not_null (map_params f e)
  | Between (a, b, c) ->
      Between (map_params f a, map_params f b, map_params f c)
  | Greatest es -> Greatest (List.map (map_params f) es)
  | Least es -> Least (List.map (map_params f) es)
  | Agg (fn, Some e) -> Agg (fn, Some (map_params f e))
  | Agg (_, None) -> e
  | Scalar_subquery q -> Scalar_subquery (map_params_query f q)
  | In_subquery (e, q) -> In_subquery (map_params f e, map_params_query f q)
  | Exists q -> Exists (map_params_query f q)

and map_params_query f = function
  | Select s ->
      let item = function
        | Star -> Star
        | Expr (e, a) -> Expr (map_params f e, a)
      in
      let table_ref = function
        | Table _ as t -> t
        | Derived (q, a) -> Derived (map_params_query f q, a)
      in
      Select
        {
          s with
          items = List.map item s.items;
          from = List.map table_ref s.from;
          where = Option.map (map_params f) s.where;
          group_by = List.map (map_params f) s.group_by;
          having = Option.map (map_params f) s.having;
          order_by = List.map (fun (e, asc) -> (map_params f e, asc)) s.order_by;
        }
  | Union (a, b) -> Union (map_params_query f a, map_params_query f b)
  | Union_all (a, b) -> Union_all (map_params_query f a, map_params_query f b)

(** Bind-variable indices appearing in an expression, in syntactic order
    (duplicates kept; subqueries ignored, matching {!columns}). *)
let rec params = function
  | Lit _ | Col _ -> []
  | Param n -> [ n ]
  | Binop (_, a, b) -> params a @ params b
  | Not e | Is_null e | Is_not_null e -> params e
  | Between (a, b, c) -> params a @ params b @ params c
  | Greatest es | Least es -> List.concat_map params es
  | Agg (_, Some e) -> params e
  | Agg (_, None) -> []
  | Scalar_subquery _ | Exists _ -> []
  | In_subquery (e, _) -> params e

let rec contains_agg = function
  | Agg _ -> true
  | Lit _ | Param _ | Col _ | Scalar_subquery _ | Exists _ -> false
  | Binop (_, a, b) -> contains_agg a || contains_agg b
  | Not e | Is_null e | Is_not_null e -> contains_agg e
  | Between (a, b, c) -> contains_agg a || contains_agg b || contains_agg c
  | Greatest es | Least es -> List.exists contains_agg es
  | In_subquery (e, _) -> contains_agg e

let rec contains_subquery = function
  | Scalar_subquery _ | Exists _ | In_subquery _ -> true
  | Lit _ | Param _ | Col _ | Agg (_, None) -> false
  | Agg (_, Some e) | Not e | Is_null e | Is_not_null e -> contains_subquery e
  | Binop (_, a, b) -> contains_subquery a || contains_subquery b
  | Between (a, b, c) ->
      contains_subquery a || contains_subquery b || contains_subquery c
  | Greatest es | Least es -> List.exists contains_subquery es
