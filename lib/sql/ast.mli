(** Abstract syntax of the SQL subset understood by the simulated DBMS.

    The subset covers what TANGO's Translator-To-SQL emits and what the
    experiments need: SELECT-FROM-WHERE-GROUP BY-HAVING-ORDER BY,
    derived tables, UNION [ALL], correlated scalar subqueries,
    aggregate functions, GREATEST/LEAST, IS [NOT] NULL, BETWEEN, and
    the DDL/DML used by the transfer operators (CREATE TABLE, INSERT,
    DROP TABLE). *)

open Tango_rel

type binop =
  | Add | Sub | Mul | Div
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type aggfun = Count_star | Count | Sum | Avg | Min | Max

val aggfun_name : aggfun -> string

type expr =
  | Lit of Value.t
  | Param of int
      (** bind variable, 1-based ([$n]; bare [?] markers are numbered
          left-to-right by the parser) *)
  | Col of string option * string  (** optional qualifier, column name *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | Between of expr * expr * expr  (** e BETWEEN lo AND hi *)
  | Greatest of expr list
  | Least of expr list
  | Agg of aggfun * expr option
      (** [Agg (Count_star, None)] is [COUNT(STAR)] *)
  | Scalar_subquery of query  (** correlated scalar subquery *)
  | In_subquery of expr * query
  | Exists of query

and select_item =
  | Star
  | Expr of expr * string option  (** expression with optional AS alias *)

and table_ref =
  | Table of string * string option  (** table name, optional alias *)
  | Derived of query * string  (** (subquery) alias *)

and query =
  | Select of select
  | Union of query * query  (** UNION (set semantics: duplicates removed) *)
  | Union_all of query * query

and select = {
  validtime : bool;
      (** temporal-SQL marker: sequenced valid-time semantics.  The
          DBMS itself rejects VALIDTIME queries — evaluating them is
          the middleware's job ({!Tango_tsql}). *)
  coalesce : bool;
      (** temporal-SQL marker ([VALIDTIME COALESCE SELECT]): coalesce
          value-equivalent result tuples with adjacent/overlapping
          periods *)
  distinct : bool;
  items : select_item list;
  from : table_ref list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * bool) list;  (** expr, ascending? *)
}

type column_def = { col_name : string; col_type : Value.dtype }

type statement =
  | Query of query
  | Create_table of string * column_def list
  | Drop_table of string
  | Insert of string * Value.t list list  (** INSERT INTO t VALUES rows *)

val select :
  ?validtime:bool ->
  ?coalesce:bool ->
  ?distinct:bool ->
  ?where:expr option ->
  ?group_by:expr list ->
  ?having:expr option ->
  ?order_by:(expr * bool) list ->
  select_item list ->
  table_ref list ->
  query

val conj : expr list -> expr option
(** Conjunction of a list of predicates; [None] when empty. *)

val conjuncts : expr -> expr list
(** Split a predicate into its top-level conjuncts. *)

val columns : expr -> (string option * string) list
(** Column references appearing in an expression (ignoring subqueries,
    whose references are resolved in their own scope or via
    correlation). *)

val map_params : (int -> expr) -> expr -> expr
(** Replace every [Param n] by [f n], recursing into subqueries.  Used
    to close a plan template over its bound values
    ([f n = Lit values.(n-1)]). *)

val map_params_query : (int -> expr) -> query -> query
(** {!map_params} over every expression of a query. *)

val params : expr -> int list
(** Bind-variable indices appearing in an expression, in syntactic
    order (duplicates kept; subqueries ignored, matching {!columns}). *)

val contains_agg : expr -> bool
val contains_subquery : expr -> bool
