(** Hand-written SQL lexer.  Produces a token list; the parser consumes it
    with one-token lookahead.  Keywords are case-insensitive; identifiers
    preserve their spelling. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercase keyword *)
  | SYM of string  (** punctuation / operator *)
  | PARAM of int  (** bind variable: [$n] carries n; a bare [?] carries 0 *)
  | EOF

exception Lex_error of string

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER";
    "ASC"; "DESC"; "AND"; "OR"; "NOT"; "AS"; "UNION"; "ALL"; "IS"; "NULL";
    "BETWEEN"; "IN"; "EXISTS"; "CREATE"; "TABLE"; "DROP"; "INSERT"; "INTO";
    "VALUES"; "DATE"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX";
    "GREATEST"; "LEAST";
    (* temporal-SQL extensions used by the TSQL front end *)
    "VALIDTIME"; "COALESCE"; "PERIOD"; "OVERLAPS"; "CONTAINS";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

(** Tokenize an SQL string. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let rec go i =
    if i >= n then ()
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '-' && i + 1 < n && s.[i + 1] = '-' then begin
        (* line comment *)
        let rec skip j = if j < n && s.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do incr j done;
        if !j < n && s.[!j] = '.' && !j + 1 < n && is_digit s.[!j + 1] then begin
          incr j;
          while !j < n && is_digit s.[!j] do incr j done;
          emit (FLOAT (float_of_string (String.sub s i (!j - i))));
          go !j
        end
        else begin
          emit (INT (int_of_string (String.sub s i (!j - i))));
          go !j
        end
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s i (!j - i) in
        if is_keyword word && not (String.contains word '.') then
          emit (KW (String.uppercase_ascii word))
        else emit (IDENT word);
        go !j
      end
      else if c = '\'' then begin
        (* string literal with '' escaping *)
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if s.[j] = '\'' then
            if j + 1 < n && s.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf s.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go next
      end
      else if c = '?' then begin
        emit (PARAM 0);
        go (i + 1)
      end
      else if c = '$' then begin
        let j = ref (i + 1) in
        while !j < n && is_digit s.[!j] do incr j done;
        if !j = i + 1 then
          raise (Lex_error (Printf.sprintf "expected digits after $ at %d" i));
        emit (PARAM (int_of_string (String.sub s (i + 1) (!j - i - 1))));
        go !j
      end
      else begin
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" ->
            emit (SYM (if two = "!=" then "<>" else two));
            go (i + 2)
        | _ -> (
            match c with
            | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '=' | '<' | '>'
            | ';' ->
                emit (SYM (String.make 1 c));
                go (i + 1)
            | _ ->
                raise
                  (Lex_error (Printf.sprintf "unexpected character %C at %d" c i)))
      end
  in
  go 0;
  List.rev (EOF :: !toks)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> k
  | SYM s -> s
  | PARAM 0 -> "?"
  | PARAM n -> "$" ^ string_of_int n
  | EOF -> "<eof>"
