(** Token-level auto-parameterization: fold the constant literals of an
    incoming query into bind variables ([$1..$n]) so literal-varying
    repetitions of the same query shape share one plan-cache template. *)

open Tango_rel

type extraction = {
  template : string;
      (** the query with literals replaced by [$1..$n], re-rendered
          canonically (uppercase keywords, single spaces) *)
  values : Value.t list;  (** the extracted literals, in [$n] order *)
}

val extract : string -> extraction option
(** Auto-parameterize a query.  [None] when there is nothing to do: the
    text does not lex, is not a SELECT shape (INSERT VALUES must stay
    literal), already carries explicit bind variables, or contains no
    literals. *)

val value_of_string : string -> Value.t
(** Natural typing of a parameter value spelled as text (CLI [--param]):
    integer, float, [true]/[false], [null], [YYYY-MM-DD] dates; anything
    else is a string. *)
