(** Estimated statistics for a (possibly intermediate) relation.

    Base-relation statistics come from the DBMS catalog via the Statistics
    Collector; {!Derive} propagates them through algebra operators.  All
    numeric values are floats, since estimates are fractional.  Column
    values are viewed numerically (dates as chronons); string columns keep
    only distinct counts. *)

open Tango_rel

type col = {
  distinct : float;
  min_v : float option;  (** numeric view of the minimum *)
  max_v : float option;
  histogram : Histogram.t option;
  avg_width : float;  (** average bytes this column contributes per tuple *)
  indexed : bool;
      (** a usable DBMS index exists on this column (only meaningful for
          base tables and selections directly over them, where the
          generated SQL keeps the base table visible to the DBMS) *)
}

type t = {
  card : float;  (** estimated cardinality *)
  cols : (string * col) list;  (** per output-schema attribute *)
}

let default_width = function
  | Value.TBool -> 1.0
  | Value.TInt | Value.TFloat | Value.TDate -> 8.0
  | Value.TStr -> 16.0

let col_default ?(width = 8.0) card =
  { distinct = card; min_v = None; max_v = None; histogram = None;
    avg_width = width; indexed = false }

let find (s : t) name =
  match List.assoc_opt name s.cols with
  | Some c -> Some c
  | None ->
      (* fall back to base-name matching, mirroring Schema.index *)
      let base = Schema.base_name name in
      let matches =
        List.filter (fun (n, _) -> String.equal (Schema.base_name n) base) s.cols
      in
      (match matches with [ (_, c) ] -> Some c | _ -> None)

let avg_tuple_size (s : t) =
  List.fold_left (fun acc (_, c) -> acc +. c.avg_width) 0.0 s.cols

(** [size s] — the [size(r)] input of the cost formulas: cardinality times
    average tuple size, in bytes. *)
let size (s : t) = s.card *. avg_tuple_size s

(** Is there a usable index on attribute [name]? *)
let indexed_on (s : t) name =
  match find s name with Some c -> c.indexed | None -> false

let distinct_of (s : t) name =
  match find s name with
  | Some c -> Float.max 1.0 (Float.min c.distinct s.card)
  | None -> Float.max 1.0 s.card

(* Merge two per-shard column estimates of the same attribute: ranges
   union, widths average weighted by cardinality, and distinct counts add
   (exact for the partition column, whose slices are disjoint; an
   overestimate elsewhere, clamped by the caller's card).  Histograms are
   dropped — per-shard bucket layouts need not line up. *)
let merge_col (card_a, (a : col)) (card_b, (b : col)) : col =
  let min_o f x y =
    match (x, y) with None, v | v, None -> v | Some x, Some y -> Some (f x y)
  in
  let total = Float.max 1.0 (card_a +. card_b) in
  {
    distinct = a.distinct +. b.distinct;
    min_v = min_o Float.min a.min_v b.min_v;
    max_v = min_o Float.max a.max_v b.max_v;
    histogram = None;
    avg_width =
      ((a.avg_width *. card_a) +. (b.avg_width *. card_b)) /. total;
    indexed = a.indexed && b.indexed;
  }

(** Merge per-shard statistics of one range-partitioned relation into
    statistics of the whole: cardinalities add, ranges union, and distinct
    counts add clamped to the merged cardinality. *)
let merge (parts : t list) : t =
  match parts with
  | [] -> invalid_arg "Rel_stats.merge: empty"
  | first :: rest ->
      let merged =
        List.fold_left
          (fun (acc : t) (s : t) ->
            {
              card = acc.card +. s.card;
              cols =
                List.map
                  (fun (name, c) ->
                    match List.assoc_opt name s.cols with
                    | None -> (name, c)
                    | Some c' -> (name, merge_col (acc.card, c) (s.card, c')))
                  acc.cols;
            })
          first rest
      in
      {
        merged with
        cols =
          List.map
            (fun (n, c) ->
              (n, { c with distinct = Float.min c.distinct merged.card }))
            merged.cols;
      }

let pp ppf (s : t) =
  Fmt.pf ppf "card=%.1f avg_size=%.1f [%a]" s.card (avg_tuple_size s)
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, c) ->
         Fmt.pf ppf "%s: d=%.0f%s" n c.distinct
           (match (c.min_v, c.max_v) with
           | Some a, Some b -> Printf.sprintf " [%g..%g]" a b
           | _ -> "")))
    s.cols
