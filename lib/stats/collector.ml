(** The Statistics Collector (paper Figure 1): obtains statistics on base
    relations and attributes from the DBMS catalog and converts them to the
    middleware's {!Rel_stats.t} form, with attribute names qualified the way
    the algebra's [Scan] qualifies its output schema. *)

open Tango_rel
open Tango_dbms

let numeric_view (v : Value.t) : float option =
  match v with
  | Value.Int _ | Value.Float _ | Value.Date _ | Value.Bool _ ->
      Some (Value.to_float v)
  | Value.Str _ | Value.Null -> None

(** Convert catalog statistics for one table.  [qualifier] is the alias (or
    table name) the scan uses. *)
let of_table_stats ~(qualifier : string) (ts : Stat.table_stats) : Rel_stats.t
    =
  let card = float_of_int ts.Stat.cardinality in
  (* Distribute the measured average tuple size over columns proportionally
     to their per-dtype default widths, so projections estimate sizes
     sensibly. *)
  let raw_widths =
    List.map
      (fun (c : Stat.column_stats) ->
        match (c.min_value, c.max_value) with
        | Some (Value.Str _), _ | _, Some (Value.Str _) -> 16.0
        | _ -> 8.0)
      ts.Stat.columns
  in
  let total_raw = List.fold_left ( +. ) 0.0 raw_widths in
  let scale =
    if total_raw > 0.0 && ts.Stat.avg_tuple_size > 0.0 then
      ts.Stat.avg_tuple_size /. total_raw
    else 1.0
  in
  let cols =
    List.map2
      (fun (c : Stat.column_stats) raw ->
        ( qualifier ^ "." ^ c.Stat.col,
          {
            Rel_stats.distinct = float_of_int (max 1 c.Stat.distinct);
            min_v = Option.bind c.Stat.min_value numeric_view;
            max_v = Option.bind c.Stat.max_value numeric_view;
            histogram = c.Stat.histogram;
            avg_width = raw *. scale;
            indexed = c.Stat.indexed;
          } ))
      ts.Stat.columns raw_widths
  in
  { Rel_stats.card; cols }

(** Collect statistics for a table directly from a database, running ANALYZE
    when the catalog has none. *)
let collect ?histograms (db : Database.t) ~(qualifier : string)
    (table : string) : Rel_stats.t =
  let ts =
    match Database.stats_of db table with
    | Some ts when histograms = None -> ts
    | _ -> Database.analyze db ?histograms ~bump:false table
  in
  of_table_stats ~qualifier ts
