(** Derivation of statistics for intermediate relations (paper Section 3):
    given base-relation statistics, estimate cardinality and column
    statistics for every operator's output. *)

open Tango_sql
open Tango_algebra

open Tango_rel

type env = {
  base : qualifier:string -> string -> Rel_stats.t;
      (** statistics for a base table under a qualifier *)
  mode : Selectivity.mode;
  binding : Value.t array option;
      (** bound parameter values: when present, [Param n] is closed to
          [Lit binding.(n-1)] before estimating, so re-optimization for
          a sensitivity bucket sees value-specific selectivities; when
          absent, parameters keep their generic estimates *)
}

val env :
  ?mode:Selectivity.mode ->
  ?binding:Value.t array ->
  (qualifier:string -> string -> Rel_stats.t) ->
  env

val strip_indexes : Rel_stats.t -> Rel_stats.t
(** Clear index-availability flags — applied whenever an operator hides the
    base table behind a derived/temp table. *)

val apply_selection : Rel_stats.t -> Ast.expr -> float -> Rel_stats.t
(** Scale cardinality/distincts by a selectivity and tighten min/max for
    explicitly bounded attributes. *)

val equi_pairs : Ast.expr -> (string * string) list
val join_cardinality : Rel_stats.t -> Rel_stats.t -> Ast.expr -> float

val temporal_overlap_factor : Rel_stats.t -> Rel_stats.t -> float
(** Expected fraction of key-matched tuple pairs whose periods overlap,
    estimated from the period attributes' ranges. *)

val taggr_cardinality : Rel_stats.t -> string list -> float * float * float
(** Temporal-aggregation bounds (paper §3.4): (minimum, maximum, estimate),
    the estimate using the paper's 60 %-of-maximum rule. *)

val derive : env -> Op.t -> Rel_stats.t
