(** Selectivity estimation (paper Section 3.3).

    Non-temporal predicates use standard techniques: uniform interpolation
    between the attribute minimum and maximum, or histogram buckets when
    available.  Temporal predicates — conjunctions bounding [T1] from above
    and [T2] from below, i.e. Overlaps and timeslice patterns — are
    estimated with the paper's semantic rule (the end of a period never
    precedes its start):

    [card(Overlaps(A, B)) = StartBefore(B, r) - EndBefore(A + 1, r)]

    The [Naive] mode disables this and treats the two bounds independently,
    reproducing the "factor of 40 too high" straightforward estimate the
    paper demonstrates; the Query 2 / E5 experiments compare the two. *)

open Tango_rel
open Tango_sql

type mode = Temporal | Naive

let default_unknown = 0.1

(* Count of values strictly below [v], using histogram when present, else
   uniform interpolation over [min, max]. *)
let count_below (s : Rel_stats.t) (col : Rel_stats.col) (v : float) : float =
  match col.Rel_stats.histogram with
  | Some h when Histogram.bucket_count h > 0 ->
      (* Scale: histograms count the analyzed rows; stats cardinality may
         have drifted, so normalize. *)
      let total = float_of_int (Histogram.total h) in
      if total <= 0.0 then 0.0
      else Histogram.count_below h v /. total *. s.Rel_stats.card
  | _ -> (
      match (col.Rel_stats.min_v, col.Rel_stats.max_v) with
      | Some lo, Some hi when hi > lo ->
          let frac = (v -. lo) /. (hi -. lo) in
          Float.max 0.0 (Float.min 1.0 frac) *. s.Rel_stats.card
      | Some lo, _ when v <= lo -> 0.0
      | _ -> s.Rel_stats.card /. 2.0)

(** [start_before s a]: estimated number of tuples whose period starts
    before chronon [a] — the paper's [StartBefore(A, r)]. *)
let start_before (s : Rel_stats.t) (a : float) : float =
  match Rel_stats.find s "T1" with
  | Some col -> count_below s col a
  | None -> s.Rel_stats.card /. 2.0

(** [end_before s a]: estimated number of tuples whose period ends before
    chronon [a] — the paper's [EndBefore(A, r)]. *)
let end_before (s : Rel_stats.t) (a : float) : float =
  match Rel_stats.find s "T2" with
  | Some col -> count_below s col a
  | None -> s.Rel_stats.card /. 2.0

(** Estimated cardinality of [Overlaps(a, b)] over [s] (periods intersecting
    [\[a, b)]). *)
let overlaps_cardinality (s : Rel_stats.t) ~(a : float) ~(b : float) : float =
  Float.max 0.0 (start_before s b -. end_before s (a +. 1.0))

(** Estimated cardinality of the timeslice at chronon [a] (periods
    containing [a]). *)
let timeslice_cardinality (s : Rel_stats.t) ~(a : float) : float =
  Float.max 0.0 (start_before s (a +. 1.0) -. end_before s (a +. 1.0))

(* ------------------------------------------------------------------ *)
(* Predicate analysis                                                   *)
(* ------------------------------------------------------------------ *)

let lit_value = function
  | Ast.Lit v -> (
      match v with
      | Value.Int _ | Value.Float _ | Value.Date _ | Value.Bool _ ->
          Some (Value.to_float v)
      | Value.Str _ | Value.Null -> None)
  | _ -> None

let col_name = function
  | Ast.Col (None, c) -> Some c
  | Ast.Col (Some q, c) -> Some (q ^ "." ^ c)
  | _ -> None

(* Normalize a comparison conjunct to (attr, op, value) with the column on
   the left. *)
let bound_of = function
  | Ast.Binop (op, l, r) -> (
      match (col_name l, lit_value r, lit_value l, col_name r) with
      | Some c, Some v, _, _ -> Some (c, op, v)
      | _, _, Some v, Some c ->
          let flip = function
            | Ast.Lt -> Ast.Gt
            | Ast.Le -> Ast.Ge
            | Ast.Gt -> Ast.Lt
            | Ast.Ge -> Ast.Le
            | op -> op
          in
          Some (c, flip op, v)
      | _ -> None)
  | _ -> None

let is_param = function Ast.Param _ -> true | _ -> false

(** Parameterized comparison conjuncts of [e], normalized to
    [(attr, op, param_index)] with the column on the left.  These are the
    slots a plan template's sensitivity guard buckets at bind time. *)
let param_bounds (e : Ast.expr) : (string * Ast.binop * int) list =
  let flip = function
    | Ast.Lt -> Ast.Gt
    | Ast.Le -> Ast.Ge
    | Ast.Gt -> Ast.Lt
    | Ast.Ge -> Ast.Le
    | op -> op
  in
  List.filter_map
    (function
      | Ast.Binop (op, l, r) -> (
          match (col_name l, r, l, col_name r) with
          | Some c, Ast.Param n, _, _ -> Some (c, op, n)
          | _, _, Ast.Param n, Some c -> Some (c, flip op, n)
          | _ -> None)
      | _ -> None)
    (Ast.conjuncts e)

let is_period_attr base e =
  match col_name e with
  | Some c -> String.equal (Schema.base_name c) base
  | None -> false

(* Standard selectivity of a single conjunct. *)
let rec conjunct_selectivity (s : Rel_stats.t) (e : Ast.expr) : float =
  let clamp f = Float.max 0.0 (Float.min 1.0 f) in
  match e with
  | Ast.Binop (Ast.And, a, b) ->
      conjunct_selectivity s a *. conjunct_selectivity s b
  | Ast.Binop (Ast.Or, a, b) ->
      let sa = conjunct_selectivity s a and sb = conjunct_selectivity s b in
      clamp (sa +. sb -. (sa *. sb))
  | Ast.Not a -> clamp (1.0 -. conjunct_selectivity s a)
  | Ast.Binop (Ast.Eq, a, b) when col_name a <> None && col_name b <> None ->
      (* column = column: 1 / max(distinct) *)
      let da = Rel_stats.distinct_of s (Option.get (col_name a)) in
      let db = Rel_stats.distinct_of s (Option.get (col_name b)) in
      1.0 /. Float.max 1.0 (Float.max da db)
  | Ast.Between (a, lo, hi) -> (
      match (col_name a, lit_value lo, lit_value hi) with
      | Some c, Some l, Some h ->
          conjunct_selectivity s
            (Ast.Binop
               (Ast.And,
                Ast.Binop (Ast.Ge, Ast.Col (None, c), Ast.Lit (Value.Float l)),
                Ast.Binop (Ast.Le, Ast.Col (None, c), Ast.Lit (Value.Float h))))
      | _ -> default_unknown)
  | Ast.Lit (Value.Bool true) -> 1.0
  | Ast.Lit (Value.Bool false) -> 0.0
  | Ast.Binop (op, a, b)
    when (col_name a <> None && is_param b)
         || (is_param a && col_name b <> None) ->
      (* Generic estimate for a parameterized comparison — the value is
         unknown while planning a template, so assume an "average"
         binding: equality hits one of the distinct values; a range
         keeps a fixed third (the industry default for unknown
         inequality bounds). *)
      let c =
        match col_name a with Some c -> c | None -> Option.get (col_name b)
      in
      (match op with
      | Ast.Eq -> 1.0 /. Float.max 1.0 (Rel_stats.distinct_of s c)
      | Ast.Neq -> 1.0 -. (1.0 /. Float.max 1.0 (Rel_stats.distinct_of s c))
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 1.0 /. 3.0
      | _ -> default_unknown)
  | _ -> (
      match bound_of e with
      | None -> default_unknown
      | Some (c, op, v) -> (
          match Rel_stats.find s c with
          | None -> default_unknown
          | Some col -> (
              let card = Float.max 1.0 s.Rel_stats.card in
              let below x = count_below s col x /. card in
              match op with
              | Ast.Eq -> 1.0 /. Float.max 1.0 col.Rel_stats.distinct
              | Ast.Neq -> 1.0 -. (1.0 /. Float.max 1.0 col.Rel_stats.distinct)
              | Ast.Lt -> clamp (below v)
              | Ast.Le -> clamp (below (v +. 1.0))
              | Ast.Gt -> clamp (1.0 -. below (v +. 1.0))
              | Ast.Ge -> clamp (1.0 -. below v)
              | _ -> default_unknown)))

(** Selectivity (fraction of tuples retained) of predicate [e] over a
    relation with statistics [s]. *)
let selectivity ?(mode = Temporal) (s : Rel_stats.t) (e : Ast.expr) : float =
  let conjuncts = Ast.conjuncts e in
  match mode with
  | Naive ->
      List.fold_left (fun acc c -> acc *. conjunct_selectivity s c) 1.0 conjuncts
  | Temporal ->
      (* Pull out the tightest T1 upper bound and T2 lower bound. *)
      let t1_upper = ref None and t2_lower = ref None in
      let rest = ref [] in
      List.iter
        (fun c ->
          match bound_of c with
          | Some (attr, Ast.Lt, v)
            when String.equal (Schema.base_name attr) "T1" ->
              let b = v in
              if match !t1_upper with None -> true | Some b' -> b < b' then
                t1_upper := Some b
          | Some (attr, Ast.Le, v)
            when String.equal (Schema.base_name attr) "T1" ->
              let b = v +. 1.0 in
              if match !t1_upper with None -> true | Some b' -> b < b' then
                t1_upper := Some b
          | Some (attr, Ast.Gt, v)
            when String.equal (Schema.base_name attr) "T2" ->
              let a = v in
              if match !t2_lower with None -> true | Some a' -> a > a' then
                t2_lower := Some a
          | Some (attr, Ast.Ge, v)
            when String.equal (Schema.base_name attr) "T2" ->
              let a = v -. 1.0 in
              if match !t2_lower with None -> true | Some a' -> a > a' then
                t2_lower := Some a
          | _ -> rest := c :: !rest)
        conjuncts;
      let base =
        match (!t1_upper, !t2_lower) with
        | Some b, Some a ->
            let card = Float.max 1.0 s.Rel_stats.card in
            Float.min 1.0 (overlaps_cardinality s ~a ~b /. card)
        | Some b, None ->
            let card = Float.max 1.0 s.Rel_stats.card in
            Float.max 0.0 (Float.min 1.0 (start_before s b /. card))
        | None, Some a ->
            let card = Float.max 1.0 s.Rel_stats.card in
            Float.max 0.0
              (Float.min 1.0 (1.0 -. (end_before s (a +. 1.0) /. card)))
        | None, None -> 1.0
      in
      List.fold_left (fun acc c -> acc *. conjunct_selectivity s c) base !rest

(* Keep period-attr helper exported for Derive. *)
let _ = is_period_attr
