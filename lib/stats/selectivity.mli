(** Selectivity estimation (paper Section 3.3).

    Non-temporal predicates use standard techniques (uniform interpolation
    or histograms).  Temporal predicates — conjunctions bounding [T1] from
    above and [T2] from below — use the paper's semantic rule:

    [card(Overlaps(A, B)) = StartBefore(B, r) - EndBefore(A + 1, r)]

    [Naive] mode treats the bounds independently, reproducing the
    "factor of 40 too high" straightforward estimate. *)

open Tango_sql

type mode = Temporal | Naive

val default_unknown : float
(** Selectivity assumed for predicates nothing is known about. *)

val start_before : Rel_stats.t -> float -> float
(** Estimated tuples whose period starts before the chronon — the paper's
    [StartBefore(A, r)]. *)

val end_before : Rel_stats.t -> float -> float
(** The paper's [EndBefore(A, r)]. *)

val overlaps_cardinality : Rel_stats.t -> a:float -> b:float -> float
(** Estimated tuples whose period intersects [\[a, b)]. *)

val timeslice_cardinality : Rel_stats.t -> a:float -> float
(** Estimated tuples whose period contains chronon [a]. *)

val lit_value : Ast.expr -> float option
(** Numeric view of a literal operand, if any. *)

val col_name : Ast.expr -> string option
(** Qualified spelling of a column reference, if the expression is one. *)

val bound_of : Ast.expr -> (string * Ast.binop * float) option
(** Normalize a comparison conjunct to (attr, op, value) with the column on
    the left. *)

val param_bounds : Ast.expr -> (string * Ast.binop * int) list
(** Parameterized comparison conjuncts, normalized to
    [(attr, op, param_index)] with the column on the left.  These are
    the slots a plan template's sensitivity guard buckets at bind
    time. *)

val conjunct_selectivity : Rel_stats.t -> Ast.expr -> float
(** Standard (non-temporal) selectivity of a single conjunct. *)

val selectivity : ?mode:mode -> Rel_stats.t -> Ast.expr -> float
(** Fraction of tuples retained by the predicate. *)
