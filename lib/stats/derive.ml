(** Derivation of statistics for intermediate relations (paper Section 3):
    given base-relation statistics, estimate cardinality and column
    statistics for every operator's output.  The temporal-aggregation
    estimate implements the paper's minimum/maximum bounds with the 60 %
    rule used for the experiments. *)

open Tango_rel
open Tango_sql
open Tango_algebra

type env = {
  base : qualifier:string -> string -> Rel_stats.t;
      (** statistics for a base table under a qualifier *)
  mode : Selectivity.mode;  (** temporal or naive selection estimation *)
  binding : Value.t array option;
      (** bound parameter values: when present, [Param n] is closed to
          [Lit binding.(n-1)] before estimating, so re-optimization for a
          sensitivity bucket sees value-specific selectivities; when
          absent, parameters keep their generic estimates *)
}

let env ?(mode = Selectivity.Temporal) ?binding base = { base; mode; binding }

(* Close predicates over the bound values, when any. *)
let close (e : env) (expr : Ast.expr) : Ast.expr =
  match e.binding with
  | None -> expr
  | Some values ->
      Ast.map_params
        (fun n ->
          if n >= 1 && n <= Array.length values then Ast.Lit values.(n - 1)
          else Ast.Param n)
        expr

let scale_col factor (c : Rel_stats.col) =
  {
    c with
    Rel_stats.distinct = Float.max 1.0 (c.Rel_stats.distinct *. factor);
  }

(* After an operator that hides the base table behind a derived table or a
   temp table, its indexes are no longer usable by the consumer's SQL. *)
let strip_indexes (s : Rel_stats.t) =
  { s with
    Rel_stats.cols =
      List.map (fun (n, c) -> (n, { c with Rel_stats.indexed = false })) s.Rel_stats.cols }

(* After a selection with selectivity [sel], distinct counts shrink but not
   below 1; histograms and min/max are kept as approximations, except for
   attributes explicitly bounded by the predicate, whose min/max tighten. *)
let apply_selection (s : Rel_stats.t) (pred : Ast.expr) (sel : float) :
    Rel_stats.t =
  let bounds = List.filter_map Selectivity.bound_of (Ast.conjuncts pred) in
  let tighten name (c : Rel_stats.col) =
    List.fold_left
      (fun (c : Rel_stats.col) (attr, op, v) ->
        if not (String.equal (Schema.base_name attr) (Schema.base_name name))
        then c
        else
          match op with
          | Ast.Lt | Ast.Le ->
              {
                c with
                Rel_stats.max_v =
                  Some
                    (match c.Rel_stats.max_v with
                    | Some m -> Float.min m v
                    | None -> v);
              }
          | Ast.Gt | Ast.Ge ->
              {
                c with
                Rel_stats.min_v =
                  Some
                    (match c.Rel_stats.min_v with
                    | Some m -> Float.max m v
                    | None -> v);
              }
          | Ast.Eq ->
              { c with Rel_stats.min_v = Some v; max_v = Some v; distinct = 1.0 }
          | _ -> c)
      c bounds
  in
  {
    Rel_stats.card = Float.max 0.0 (s.Rel_stats.card *. sel);
    cols =
      List.map
        (fun (n, c) -> (n, tighten n (scale_col (Float.max sel 0.001) c)))
        s.Rel_stats.cols;
  }

(* Equi-join attribute pairs from a predicate. *)
let equi_pairs pred =
  List.filter_map
    (fun c ->
      match c with
      | Ast.Binop (Ast.Eq, a, b) -> (
          match (Selectivity.col_name a, Selectivity.col_name b) with
          | Some ca, Some cb -> Some (ca, cb)
          | _ -> None)
      | _ -> None)
    (Ast.conjuncts pred)

let join_cardinality (l : Rel_stats.t) (r : Rel_stats.t) pred =
  let cross = l.Rel_stats.card *. r.Rel_stats.card in
  match equi_pairs pred with
  | [] ->
      (* theta join: fall back to conjunct selectivity over the product *)
      let merged = { Rel_stats.card = cross; cols = l.Rel_stats.cols @ r.Rel_stats.cols } in
      cross *. Selectivity.conjunct_selectivity merged pred
  | pairs ->
      List.fold_left
        (fun acc (ca, cb) ->
          let da =
            match Rel_stats.find l ca with
            | Some c -> c.Rel_stats.distinct
            | None -> (
                match Rel_stats.find r ca with
                | Some c -> c.Rel_stats.distinct
                | None -> 1.0)
          and db =
            match Rel_stats.find r cb with
            | Some c -> c.Rel_stats.distinct
            | None -> (
                match Rel_stats.find l cb with
                | Some c -> c.Rel_stats.distinct
                | None -> 1.0)
          in
          acc /. Float.max 1.0 (Float.max da db))
        cross pairs

(* Expected fraction of (already key-matched) tuple pairs whose periods
   overlap: (d1 + d2) / span, durations and span estimated from the period
   attributes' min/max. *)
let temporal_overlap_factor (l : Rel_stats.t) (r : Rel_stats.t) =
  let span_and_duration (s : Rel_stats.t) =
    match (Rel_stats.find s "T1", Rel_stats.find s "T2") with
    | Some c1, Some c2 -> (
        match
          (c1.Rel_stats.min_v, c1.Rel_stats.max_v, c2.Rel_stats.min_v,
           c2.Rel_stats.max_v)
        with
        | Some lo1, Some hi1, Some lo2, Some hi2 ->
            let span = Float.max 1.0 (hi2 -. lo1) in
            (* mean duration approximated from midpoints *)
            let dur = Float.max 1.0 (((lo2 +. hi2) /. 2.0) -. ((lo1 +. hi1) /. 2.0)) in
            Some (span, dur)
        | _ -> None)
    | _ -> None
  in
  match (span_and_duration l, span_and_duration r) with
  | Some (span_l, d1), Some (span_r, d2) ->
      let span = Float.max span_l span_r in
      Float.min 1.0 ((d1 +. d2) /. span)
  | _ -> 0.5

(** Cardinality bounds and estimate for temporal aggregation (paper
    Section 3.4). *)
let taggr_cardinality (s : Rel_stats.t) (group_by : string list) :
    float * float * float =
  let card = Float.max 1.0 s.Rel_stats.card in
  let d name = Rel_stats.distinct_of s name in
  let d_t1 = d "T1" and d_t2 = d "T2" in
  let group_ds = List.map d group_by in
  let min_card =
    List.fold_left Float.min
      (Float.min (d_t1 +. 1.0) (d_t2 +. 1.0))
      (match group_ds with [] -> [ card ] | ds -> ds)
  in
  let max_card =
    match group_ds with
    | [] -> d_t1 +. d_t2 +. 1.0
    | ds ->
        let max_d = List.fold_left Float.max 1.0 ds in
        (((card /. max_d) *. 2.0) -. 1.0) *. max_d
  in
  let max_card = Float.min max_card ((card *. 2.0) -. 1.0) in
  let estimate =
    let sixty = 0.6 *. max_card in
    if sixty > min_card then sixty else min_card
  in
  (min_card, max_card, Float.max 1.0 estimate)

(** Derive statistics for an operator tree. *)
let rec derive (e : env) (op : Op.t) : Rel_stats.t =
  match op with
  | Op.Scan { table; alias; _ } ->
      e.base ~qualifier:(Option.value alias ~default:table) table
  | Op.Select { pred; arg } ->
      let s = derive e arg in
      let pred = close e pred in
      let sel = Selectivity.selectivity ~mode:e.mode s pred in
      apply_selection s pred sel
  | Op.Project { items; arg } ->
      let s = derive e arg in
      let cols =
        List.map
          (fun (expr, name) ->
            match expr with
            | Ast.Col _ -> (
                match Rel_stats.find s (Option.get (Selectivity.col_name expr)) with
                | Some c -> (name, c)
                | None -> (name, Rel_stats.col_default s.Rel_stats.card))
            | _ -> (name, Rel_stats.col_default s.Rel_stats.card))
          items
      in
      strip_indexes { s with Rel_stats.cols }
  | Op.Sort { arg; _ } -> strip_indexes (derive e arg)
  | Op.To_mw arg | Op.To_db arg -> strip_indexes (derive e arg)
  | Op.Product { left; right } ->
      let l = derive e left and r = derive e right in
      strip_indexes
        {
          Rel_stats.card = l.Rel_stats.card *. r.Rel_stats.card;
          cols = l.Rel_stats.cols @ r.Rel_stats.cols;
        }
  | Op.Join { pred; left; right } ->
      let l = derive e left and r = derive e right in
      let pred = close e pred in
      strip_indexes
        {
          Rel_stats.card = join_cardinality l r pred;
          cols = l.Rel_stats.cols @ r.Rel_stats.cols;
        }
  | Op.Temporal_join { pred; left; right } ->
      let l = derive e left and r = derive e right in
      let pred = close e pred in
      let card = join_cardinality l r pred *. temporal_overlap_factor l r in
      let keep (s : Rel_stats.t) side_schema =
        List.filter
          (fun (n, _) ->
            List.exists
              (fun (a : Schema.attribute) -> String.equal a.Schema.name n)
              (Op.non_period_attrs side_schema))
          s.Rel_stats.cols
      in
      let sl = Op.schema left and sr = Op.schema right in
      let t_cols =
        let of_side (s : Rel_stats.t) name =
          match Rel_stats.find s name with
          | Some c -> c
          | None -> Rel_stats.col_default card
        in
        [
          ("T1", of_side l "T1"); ("T2", of_side r "T2");
        ]
      in
      strip_indexes { Rel_stats.card; cols = keep l sl @ keep r sr @ t_cols }
  | Op.Temporal_aggregate { group_by; aggs; arg } ->
      let s = derive e arg in
      let _, _, card = taggr_cardinality s group_by in
      let group_cols =
        List.map
          (fun g ->
            match Rel_stats.find s g with
            | Some c -> (g, c)
            | None -> (g, Rel_stats.col_default card))
          group_by
      in
      let t1 = Rel_stats.find s "T1" and t2 = Rel_stats.find s "T2" in
      let period_col existing =
        match existing with
        | Some (c : Rel_stats.col) -> { c with Rel_stats.distinct = Float.min card c.Rel_stats.distinct *. 2.0 }
        | None -> Rel_stats.col_default card
      in
      let agg_cols =
        List.map
          (fun (a : Op.agg) ->
            (a.Op.out, Rel_stats.col_default ~width:8.0 card))
          aggs
      in
      {
        Rel_stats.card;
        cols =
          group_cols
          @ [ ("T1", period_col t1); ("T2", period_col t2) ]
          @ agg_cols;
      }
  | Op.Dup_elim arg ->
      let s = derive e arg in
      (* bounded by the product of distinct counts *)
      let prod =
        List.fold_left
          (fun acc (_, c) -> Float.min (acc *. c.Rel_stats.distinct) s.Rel_stats.card)
          1.0 s.Rel_stats.cols
      in
      { s with Rel_stats.card = Float.min s.Rel_stats.card prod }
  | Op.Coalesce arg ->
      let s = derive e arg in
      (* coalescing can only shrink; 60 % heuristic as for aggregation *)
      { s with Rel_stats.card = Float.max 1.0 (0.6 *. s.Rel_stats.card) }
  | Op.Difference { left; right } ->
      let l = derive e left and r = derive e right in
      {
        l with
        Rel_stats.card =
          Float.max 0.0 (l.Rel_stats.card -. (r.Rel_stats.card /. 2.0));
      }
