(** Estimated statistics for a (possibly intermediate) relation.

    Base-relation statistics come from the DBMS catalog via the Statistics
    Collector; {!Derive} propagates them through algebra operators.
    Values are viewed numerically (dates as chronons). *)

open Tango_rel

type col = {
  distinct : float;
  min_v : float option;  (** numeric view of the minimum *)
  max_v : float option;
  histogram : Histogram.t option;
  avg_width : float;  (** average bytes this column contributes per tuple *)
  indexed : bool;
      (** a usable DBMS index exists on this column (meaningful only while
          the generated SQL keeps the base table visible) *)
}

type t = {
  card : float;  (** estimated cardinality *)
  cols : (string * col) list;  (** per output-schema attribute *)
}

val default_width : Value.dtype -> float

val col_default : ?width:float -> float -> col
(** Uninformative column statistics for a relation of the given
    cardinality. *)

val find : t -> string -> col option
(** Lookup with base-name fallback, mirroring {!Schema.index}. *)

val avg_tuple_size : t -> float

val size : t -> float
(** The [size(r)] input of the cost formulas: cardinality × average tuple
    size, in bytes. *)

val indexed_on : t -> string -> bool

val distinct_of : t -> string -> float
(** Distinct count clamped to [1, card]. *)

val merge : t list -> t
(** Merge per-shard statistics of one range-partitioned relation into
    statistics of the whole relation: cardinalities add, value ranges
    union, distinct counts add (clamped to the merged cardinality — exact
    for the partition column, an overestimate elsewhere), widths average
    weighted by cardinality, and histograms are dropped.  Raises
    [Invalid_argument] on an empty list. *)

val pp : Format.formatter -> t -> unit
