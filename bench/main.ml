(* TANGO benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5), plus the ablations listed in DESIGN.md.

   Experiments (select with --experiment, comma-separated; default all):

     fig8      Query 1 (temporal aggregation), 3 plans x relation sizes
     fig10     Query 2 (aggregation + temporal join), 6 plans x period ends
     fig11a    Query 3 (temporal self-join), 2 plans x start bounds
     fig11b    Query 4 (regular join), 3 plans x relation sizes
     sel       Section 3.3 selectivity: naive vs temporal vs actual
     choice    optimizer plan choice with vs without histograms (Query 2)
     memo      equivalence class / element counts for Queries 1-4
     overhead  middleware optimization time vs execution time
     prefetch  row-prefetch sweep for TRANSFER^M (Section 3.2 remark)
     calib     cost-model quality: default vs calibrated factors
     feedback  cost-factor adaptation across repeated queries
     adapt     est-vs-actual profiling + adaptive recalibration (JSON trajectory)
     obs       per-query traces + global metrics, exported as JSON
     throughput  repeated workload, plan cache x batch execution (qps)
     sharding  workload over 1/2/4 time-range shards + pruning smoke
     tail      tail-latency attribution on a skewed 2-shard topology
     micro     Bechamel micro-benchmarks of the core algorithms

   Sizes are scaled down from the paper's 83,857-tuple POSITION by --scale
   (default 0.02) so the full suite runs in minutes; shapes (who wins,
   where crossovers fall) are preserved.  Absolute times are this machine's,
   not the paper's 2001 testbed. *)

open Tango_rel
open Tango_algebra
open Tango_core
open Tango_workload

(* ------------------------------------------------------------------ *)
(* Context                                                              *)
(* ------------------------------------------------------------------ *)

type ctx = {
  scale : float;
  quick : bool;
  factors : Tango_cost.Factors.t;  (* calibrated once, shared *)
  full_position : Relation.t;  (* the scaled "original" POSITION *)
  full_employee : Relation.t;
}

let make_ctx ~scale ~quick =
  let n_pos = max 60 (int_of_float (scale *. float_of_int Uis.position_full_cardinality)) in
  let n_emp = max 40 (int_of_float (scale *. float_of_int Uis.employee_full_cardinality)) in
  Fmt.pr "# scale %.3f: POSITION %d tuples (paper: %d), EMPLOYEE %d (paper: %d)@."
    scale n_pos Uis.position_full_cardinality n_emp Uis.employee_full_cardinality;
  let full_position = Uis.position ~n:n_pos () in
  let full_employee = Uis.employee ~n:n_emp () in
  (* calibrate once against a representative database *)
  Fmt.pr "# calibrating cost factors...@.";
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db "POSITION" full_position;
  Tango_dbms.Database.analyze_all db ();
  let mw = Middleware.connect db in
  Middleware.calibrate mw;
  let factors = Middleware.factors mw in
  Fmt.pr "# factors: %a@.@." Tango_cost.Factors.pp factors;
  { scale; quick; factors; full_position; full_employee }

(* Prefix of the full POSITION: the paper's size variants are subsets of
   the original relation. *)
let position_prefix ctx n =
  let tuples = Relation.tuples ctx.full_position in
  let n = min n (Array.length tuples) in
  Relation.make (Relation.schema ctx.full_position) (Array.sub tuples 0 n)

(* A session over a database holding [tables]; adopts calibrated factors. *)
let session ctx tables =
  let db = Tango_dbms.Database.create () in
  List.iter (fun (name, rel) -> Tango_dbms.Database.load_relation db name rel) tables;
  if List.mem_assoc "EMPLOYEE" tables then
    Tango_dbms.Database.create_index db ~clustered:true "EMPLOYEE" "EmpID";
  Tango_dbms.Database.analyze_all db ();
  let mw = Middleware.connect db in
  Middleware.adopt_factors mw ctx.factors;
  (db, mw)

let ms report = report.Middleware.execute_us /. 1000.0

(* Paper size variants, rescaled. *)
let scaled_sizes ctx =
  let full = Relation.cardinality ctx.full_position in
  let variants = Uis.position_variant_cardinalities @ [ Uis.position_full_cardinality ] in
  let sizes =
    List.map
      (fun v ->
        max 40
          (int_of_float
             (float_of_int v /. float_of_int Uis.position_full_cardinality
             *. float_of_int full)))
      variants
  in
  if ctx.quick then List.filteri (fun i _ -> i mod 2 = 0 || i = List.length sizes - 1) sizes
  else sizes

let period_ends ctx =
  let all =
    [ "1984-01-01"; "1986-01-01"; "1988-01-01"; "1990-01-01"; "1992-01-01";
      "1994-01-01"; "1996-01-01"; "1998-01-01"; "2000-01-01" ]
  in
  if ctx.quick then [ "1986-01-01"; "1992-01-01"; "1996-01-01"; "2000-01-01" ]
  else all

let header cols = Fmt.pr "%s@." (String.concat "  " cols)

(* Machine-readable baseline persistence: an experiment may leave a JSON
   payload here; the driver writes it (plus wall time) to
   BENCH_<experiment>.json in --out so CI can diff runs as artifacts. *)
let bench_payload : Tango_obs.Json.t option ref = ref None

(* ------------------------------------------------------------------ *)
(* fig8: Query 1                                                        *)
(* ------------------------------------------------------------------ *)

(* Classify which of the paper's three Query 1 plans the optimizer's choice
   corresponds to. *)
let classify_q1_plan (plan : Tango_volcano.Physical.plan) =
  let open Tango_volcano.Physical in
  let rec any p f = f p || List.exists (fun c -> any c f) p.children in
  if any plan (fun p -> p.algorithm = Taggr_d) then "plan3"
  else if any plan (fun p -> p.algorithm = Sort_d) then "plan1"
  else if any plan (fun p -> p.algorithm = Taggr_m) then "plan2"
  else "other"

let fig8 ctx =
  Fmt.pr "== Figure 8: Query 1 (temporal aggregation), running time [ms] ==@.";
  Fmt.pr "(paper: plans 1-2 in the middleware outperform the all-DBMS plan 3 by up to 10x)@.";
  header [ "size"; "plan1_sortD_taggrM"; "plan2_sortM_taggrM"; "plan3_allDBMS"; "optimizer_picks" ];
  List.iter
    (fun n ->
      let _db, mw = session ctx [ ("POSITION", position_prefix ctx n) ] in
      let run tree = ms (Middleware.run_fixed mw ~required_order:Queries.q1_order tree) in
      let t1 = run (Queries.q1_plan1 ~position:"POSITION" ()) in
      let t2 = run (Queries.q1_plan2 ~position:"POSITION" ()) in
      let t3 = run (Queries.q1_plan3 ~position:"POSITION" ()) in
      let choice =
        let initial =
          Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw) Queries.q1_sql
        in
        match (Middleware.optimize mw ~required_order:Queries.q1_order initial).Tango_volcano.Search.plan with
        | Some p -> classify_q1_plan p
        | None -> "none"
      in
      Fmt.pr "%6d  %12.1f  %12.1f  %12.1f  %s@." n t1 t2 t3 choice)
    (scaled_sizes ctx);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* fig10: Query 2                                                       *)
(* ------------------------------------------------------------------ *)

let fig10 ctx =
  Fmt.pr "== Figure 10: Query 2 (aggregation + temporal join), running time [ms] ==@.";
  Fmt.pr "(paper: plans 4-5 suffer from expensive transfers; plan 6 deteriorates as the@.";
  Fmt.pr " window grows; plans 2-3 with the temporal join in the middleware scale best)@.";
  header
    [ "period_end"; "p1_taggrM"; "p2_tjoinM"; "p3_sortM"; "p4_filterM";
      "p5_noreduce"; "p6_allDBMS" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  List.iter
    (fun period_end ->
      let times =
        List.map
          (fun (_, tree) ->
            ms (Middleware.run_fixed mw ~required_order:Queries.q2_order tree))
          (Queries.q2_plans ~position:"POSITION" ~period_end ())
      in
      Fmt.pr "%s  %s@." period_end
        (String.concat "  " (List.map (Printf.sprintf "%9.1f") times)))
    (period_ends ctx);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* fig11a: Query 3                                                      *)
(* ------------------------------------------------------------------ *)

let fig11a ctx =
  Fmt.pr "== Figure 11(a): Query 3 (temporal self-join), running time [ms] ==@.";
  Fmt.pr "(paper: the middleware join wins once the result outgrows the arguments,@.";
  Fmt.pr " i.e. for later start bounds; the optimizer switches plans accordingly)@.";
  header [ "start_bound"; "plan1_allDBMS"; "plan2_tjoinM"; "optimizer_picks" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  (* The paper predates the transfer-sharing refinement (our A4 ablation);
     disable it here so plan 2 pays both transfers, as in Figure 11(a). *)
  Middleware.set_config mw
    Middleware.Config.(with_transfer_sharing false (Middleware.config mw));
  let bounds =
    let all = [ "1984-01-01"; "1986-01-01"; "1988-01-01"; "1990-01-01";
                "1992-01-01"; "1994-01-01"; "1996-01-01"; "1998-01-01" ] in
    if ctx.quick then [ "1988-01-01"; "1994-01-01"; "1998-01-01" ] else all
  in
  List.iter
    (fun start_bound ->
      let run tree = ms (Middleware.run_fixed mw ~required_order:Queries.q3_order tree) in
      let t1 = run (Queries.q3_plan1 ~position:"POSITION" ~start_bound ()) in
      let t2 = run (Queries.q3_plan2 ~position:"POSITION" ~start_bound ()) in
      let choice =
        let initial =
          Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw)
            (Queries.q3_sql ~start_bound)
        in
        match (Middleware.optimize mw ~required_order:Queries.q3_order initial).Tango_volcano.Search.plan with
        | Some p ->
            let open Tango_volcano.Physical in
            let rec any q f = f q || List.exists (fun c -> any c f) q.children in
            if any p (fun q -> q.algorithm = Tjoin_m) then "plan2" else "plan1"
        | None -> "none"
      in
      Fmt.pr "%s  %12.1f  %12.1f  %s@." start_bound t1 t2 choice)
    bounds;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* fig11b: Query 4                                                      *)
(* ------------------------------------------------------------------ *)

let fig11b ctx =
  Fmt.pr "== Figure 11(b): Query 4 (regular join), running time [ms] ==@.";
  Fmt.pr "(paper: the DBMS join plans win; plan 1 in the middleware stays competitive,@.";
  Fmt.pr " showing TANGO's run-time overhead is small)@.";
  header [ "size"; "plan1_joinM"; "plan2_DBMS_NL"; "plan3_DBMS_SM"; "optimizer_picks" ];
  List.iter
    (fun n ->
      let db, mw =
        session ctx
          [ ("POSITION", position_prefix ctx n); ("EMPLOYEE", ctx.full_employee) ]
      in
      let run tree = ms (Middleware.run_fixed mw ~required_order:Queries.q4_order tree) in
      let t1 = run (Queries.q4_plan1 ~position:"POSITION" ~employee:"EMPLOYEE" ()) in
      Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Force_nested_loop;
      let t2 = run (Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ()) in
      Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Force_sort_merge;
      let t3 = run (Queries.q4_plan_dbms ~position:"POSITION" ~employee:"EMPLOYEE" ()) in
      Tango_dbms.Database.set_join_method db Tango_dbms.Executor.Auto;
      let choice =
        let initial =
          Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw) Queries.q4_sql
        in
        match (Middleware.optimize mw ~required_order:Queries.q4_order initial).Tango_volcano.Search.plan with
        | Some p ->
            let open Tango_volcano.Physical in
            let rec any q f = f q || List.exists (fun c -> any c f) q.children in
            if any p (fun q -> q.algorithm = Merge_join_m) then "mw-join" else "dbms-join"
        | None -> "none"
      in
      Fmt.pr "%6d  %11.1f  %12.1f  %12.1f  %s@." n t1 t2 t3 choice)
    (scaled_sizes ctx);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* sel: Section 3.3 selectivity                                         *)
(* ------------------------------------------------------------------ *)

let sel _ctx =
  Fmt.pr "== Section 3.3: selectivity of temporal predicates ==@.";
  Fmt.pr "(paper: 100k tuples, 7-day periods uniform over 1995-2000;@.";
  Fmt.pr " Overlaps(1997-02-01, 1997-02-08): the naive estimate is 24.7%%, a factor@.";
  Fmt.pr " of 40 too high; the temporal estimate lands at ~0.8%%, close to actual)@.";
  let rel = Uniform.generate ~n:100_000 () in
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db "R" rel;
  let with_hist = Tango_stats.Collector.collect ~histograms:`All db ~qualifier:"R" "R" in
  let without = Tango_stats.Collector.collect ~histograms:`None db ~qualifier:"R" "R" in
  header [ "window"; "actual%"; "naive%"; "temporal%"; "temporal_hist%" ];
  let windows =
    [ ("1997-02-01", "1997-02-08"); ("1995-06-01", "1995-06-08");
      ("1999-01-01", "1999-03-01"); ("1996-01-01", "1997-01-01");
      ("1997-11-11", "1997-11-12") ]
  in
  List.iter
    (fun (a_s, b_s) ->
      let a = Tango_temporal.Chronon.of_string a_s
      and b = Tango_temporal.Chronon.of_string b_s in
      let pred =
        Tango_sql.Ast.(
          Binop
            ( And,
              Binop (Lt, Col (None, "T1"), Lit (Value.Date b)),
              Binop (Gt, Col (None, "T2"), Lit (Value.Date a)) ))
      in
      let pct x = 100.0 *. x in
      let actual =
        float_of_int (Uniform.actual_overlaps rel ~a ~b) /. 100_000.0
      in
      let naive = Tango_stats.Selectivity.selectivity ~mode:Tango_stats.Selectivity.Naive without pred in
      let temporal = Tango_stats.Selectivity.selectivity ~mode:Tango_stats.Selectivity.Temporal without pred in
      let temporal_h = Tango_stats.Selectivity.selectivity ~mode:Tango_stats.Selectivity.Temporal with_hist pred in
      Fmt.pr "%s..%s  %7.3f  %7.3f  %9.3f  %9.3f@." a_s b_s (pct actual)
        (pct naive) (pct temporal) (pct temporal_h))
    windows;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* choice: histograms and plan choice (Query 2)                         *)
(* ------------------------------------------------------------------ *)

let classify_q2 (plan : Tango_volcano.Physical.plan) =
  let open Tango_volcano.Physical in
  let rec any p f = f p || List.exists (fun c -> any c f) p.children in
  let taggr_m = any plan (fun p -> p.algorithm = Taggr_m) in
  let tjoin_m = any plan (fun p -> p.algorithm = Tjoin_m) in
  match (taggr_m, tjoin_m) with
  | true, true -> "taggrM+tjoinM"
  | true, false -> "taggrM"
  | false, true -> "tjoinM"
  | false, false -> "all-DBMS"

let choice ctx =
  Fmt.pr "== Optimizer choice with vs without histograms (Query 2) ==@.";
  Fmt.pr "(paper: with histograms the optimizer always returned the better plan 2;@.";
  Fmt.pr " without them it misjudged the temporal selection for mid-range windows)@.";
  header
    [ "period_end"; "with_hist"; "without_hist"; "est_ms_h"; "est_ms_noh";
      "selcard_hist"; "selcard_nohist"; "selcard_naive"; "actual" ];
  let db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  List.iter
    (fun period_end ->
      let sql = Queries.q2_sql ~period_end in
      let choose () =
        let initial =
          Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw) sql
        in
        match (Middleware.optimize mw ~required_order:Queries.q2_order initial).Tango_volcano.Search.plan with
        | Some p -> (classify_q2 p, p.Tango_volcano.Physical.total_cost /. 1000.0)
        | None -> ("none", nan)
      in
      (* Estimated cardinality of the Query 2 window+payrate selection on
         POSITION, under the three estimation regimes, vs the truth. *)
      let sel_op =
        Op.select (Queries.q2_sel_b ~period_end)
          (Op.scan ~alias:"B" "POSITION" Uis.position_schema)
      in
      let est_card mode hist =
        Middleware.set_config mw
          Middleware.Config.(with_histograms hist (Middleware.config mw));
        Middleware.set_config mw
          Middleware.Config.(with_selectivity_mode mode (Middleware.config mw));
        let env = Middleware.stats_env mw in
        (Tango_stats.Derive.derive env sel_op).Tango_stats.Rel_stats.card
      in
      let card_hist = est_card Tango_stats.Selectivity.Temporal true in
      let card_nohist = est_card Tango_stats.Selectivity.Temporal false in
      let card_naive = est_card Tango_stats.Selectivity.Naive false in
      Middleware.set_config mw
        Middleware.Config.(
          with_selectivity_mode Tango_stats.Selectivity.Temporal
            (Middleware.config mw));
      let actual =
        Relation.cardinality
          (Tango_dbms.Database.query_ast db
             (Tango_sqlgen.Translate.translate sel_op))
      in
      Middleware.set_config mw
    Middleware.Config.(with_histograms true (Middleware.config mw));
      let with_h, est_w = choose () in
      Middleware.set_config mw
    Middleware.Config.(with_histograms false (Middleware.config mw));
      let without_h, est_wo = choose () in
      Middleware.set_config mw
    Middleware.Config.(with_histograms true (Middleware.config mw));
      Fmt.pr "%s  %-14s  %-14s  %8.1f  %8.1f  %8.0f  %8.0f  %8.0f  %6d@."
        period_end with_h without_h est_w est_wo card_hist card_nohist
        card_naive actual)
    (period_ends ctx);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* memo: class/element counts                                           *)
(* ------------------------------------------------------------------ *)

let memo ctx =
  Fmt.pr "== Equivalence classes and elements per query (Section 5.2) ==@.";
  Fmt.pr "(paper, with its rule set: Q1 12/29, Q2 142/452, Q3 104/301, Q4 13/30)@.";
  header [ "query"; "classes"; "elements"; "opt_time[ms]" ];
  let _db, mw =
    session ctx [ ("POSITION", ctx.full_position); ("EMPLOYEE", ctx.full_employee) ]
  in
  List.iter
    (fun (name, sql, order) ->
      let initial =
        Tango_tsql.Compile.initial_plan ~lookup:(Middleware.schema_lookup mw) sql
      in
      let r = Middleware.optimize mw ~required_order:order initial in
      Fmt.pr "%-8s %8d %9d  %10.1f@." name r.Tango_volcano.Search.classes
        r.Tango_volcano.Search.elements
        (r.Tango_volcano.Search.time_us /. 1000.0))
    [
      ("query1", Queries.q1_sql, Queries.q1_order);
      ("query2", Queries.q2_sql ~period_end:"1996-01-01", Queries.q2_order);
      ("query3", Queries.q3_sql ~start_bound:"1996-01-01", Queries.q3_order);
      ("query4", Queries.q4_sql, Queries.q4_order);
    ];
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* overhead: optimization vs execution                                  *)
(* ------------------------------------------------------------------ *)

let overhead ctx =
  Fmt.pr "== Middleware overhead: optimization vs execution time [ms] ==@.";
  Fmt.pr "(paper: \"for the tested queries, the middleware optimization overhead@.";
  Fmt.pr " was very small\")@.";
  header [ "query"; "optimize[ms]"; "execute[ms]"; "overhead%" ];
  let _db, mw =
    session ctx [ ("POSITION", ctx.full_position); ("EMPLOYEE", ctx.full_employee) ]
  in
  List.iter
    (fun (name, sql) ->
      let r = Middleware.query mw sql in
      let o = r.Middleware.optimize_us /. 1000.0 in
      let e = Stdlib.max 0.001 (ms r) in
      Fmt.pr "%-8s %11.1f %11.1f %9.1f@." name o e (100.0 *. o /. (o +. e)))
    Queries.workload;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* prefetch: row-prefetch sweep (A1)                                    *)
(* ------------------------------------------------------------------ *)

let prefetch ctx =
  Fmt.pr "== Ablation: JDBC-style row-prefetch and TRANSFER^M [ms] ==@.";
  Fmt.pr "(paper Section 3.2: performance is \"affected by the row-prefetch setting\")@.";
  header [ "row_prefetch"; "transfer_ms"; "roundtrips" ];
  List.iter
    (fun pf ->
      let db = Tango_dbms.Database.create () in
      Tango_dbms.Database.load_relation db "POSITION" ctx.full_position;
      Tango_dbms.Database.analyze_all db ();
      let mw = Middleware.connect ~row_prefetch:pf db in
      Middleware.adopt_factors mw ctx.factors;
      let tree = Op.to_mw (Op.scan "POSITION" Uis.position_schema) in
      let r = Middleware.run_fixed mw tree in
      Fmt.pr "%12d  %10.1f  %10d@." pf (ms r)
        (Tango_dbms.Client.roundtrips (Middleware.client mw)))
    [ 1; 2; 5; 10; 25; 50; 100; 250 ];
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* calib: does calibration improve the cost model? (A2)                 *)
(* ------------------------------------------------------------------ *)

let calib ctx =
  Fmt.pr "== Ablation: cost-model quality, default vs calibrated factors ==@.";
  Fmt.pr "(does the cheapest-estimated plan coincide with the fastest-measured one?)@.";
  header [ "query"; "variant"; "est_best"; "measured_best"; "agree" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  let default_factors = Tango_cost.Factors.default () in
  let best xs =
    fst
      (List.fold_left
         (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
         ("?", infinity) xs)
  in
  let eval_set name plans order =
    let measured =
      List.map
        (fun (pname, tree) ->
          (pname, ms (Middleware.run_fixed mw ~required_order:order tree)))
        plans
    in
    let measured_best = best measured in
    List.iter
      (fun (variant, factors) ->
        let estimates =
          List.map
            (fun (pname, tree) ->
              match
                Tango_volcano.Search.cost_plan ~factors
                  ~stats_env:(Middleware.stats_env mw) ~required_order:order tree
              with
              | Some p -> (pname, p.Tango_volcano.Physical.total_cost)
              | None -> (pname, infinity))
            plans
        in
        let est_best = best estimates in
        Fmt.pr "%-8s %-11s %-18s %-18s %b@." name variant est_best measured_best
          (String.equal est_best measured_best))
      [ ("default", default_factors); ("calibrated", ctx.factors) ]
  in
  eval_set "query1" (Queries.q1_plans ~position:"POSITION" ()) Queries.q1_order;
  eval_set "query3"
    (Queries.q3_plans ~position:"POSITION" ~start_bound:"1996-01-01" ())
    Queries.q3_order;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* feedback: adaptation (A3)                                            *)
(* ------------------------------------------------------------------ *)

let feedback ctx =
  Fmt.pr "== Ablation: feedback adaptation of cost factors ==@.";
  Fmt.pr "(repeated queries refine the transfer factor toward its measured value)@.";
  header [ "round"; "p_tm_before"; "p_tm_after" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  Middleware.set_config mw
    Middleware.Config.(with_feedback true (Middleware.config mw));
  for round = 1 to 5 do
    let before = (Middleware.factors mw).Tango_cost.Factors.p_tm in
    ignore (Middleware.query mw Queries.q1_sql);
    let after = (Middleware.factors mw).Tango_cost.Factors.p_tm in
    Fmt.pr "%5d  %11.4f  %11.4f@." round before after
  done;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* sharing: the paper's sec-7 single-T^M refinement (A4)                *)
(* ------------------------------------------------------------------ *)

let sharing ctx =
  Fmt.pr "== Ablation: transfer sharing (paper sec. 7: \"issue only one T^M\") ==@.";
  Fmt.pr "(Query 3 reads POSITION twice with alpha-equivalent SQL; sharing fetches once)@.";
  header [ "start_bound"; "unshared_ms"; "shared_ms"; "roundtrips_unshared"; "roundtrips_shared" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  List.iter
    (fun start_bound ->
      let tree = Queries.q3_plan2 ~position:"POSITION" ~start_bound () in
      Middleware.set_config mw
    Middleware.Config.(with_transfer_sharing false (Middleware.config mw));
      Tango_dbms.Client.reset_counters (Middleware.client mw);
      let t_un = ms (Middleware.run_fixed mw ~required_order:Queries.q3_order tree) in
      let rt_un = Tango_dbms.Client.roundtrips (Middleware.client mw) in
      Middleware.set_config mw
    Middleware.Config.(with_transfer_sharing true (Middleware.config mw));
      Tango_dbms.Client.reset_counters (Middleware.client mw);
      let t_sh = ms (Middleware.run_fixed mw ~required_order:Queries.q3_order tree) in
      let rt_sh = Tango_dbms.Client.roundtrips (Middleware.client mw) in
      Fmt.pr "%s  %10.1f  %10.1f  %12d  %12d@." start_bound t_un t_sh rt_un rt_sh)
    [ "1990-01-01"; "1996-01-01"; "2000-01-01" ];
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* adapt: estimated-vs-actual profiling + adaptive recalibration (A5)   *)
(* ------------------------------------------------------------------ *)

(* Perturb the substrate under a calibrated session (a much slower
   simulated network round trip), watch the cost q-error blow up, and
   verify the adaptive recalibration loop shrinks it again.  Emits the
   per-round trajectory as JSON (the CI artifact). *)
let adapt ctx =
  Fmt.pr "== Adaptation: estimated-vs-actual profiling feedback loop ==@.";
  Fmt.pr "(calibrated factors; after round 2 the per-round-trip latency is@.";
  Fmt.pr " perturbed 16x — misestimation triggers a cost-factor refit and@.";
  Fmt.pr " the mean cost q-error of subsequent plans shrinks back)@.";
  header [ "round"; "phase"; "mean_q_cost"; "mean_q_rows"; "p_tm"; "refits" ];
  let _db, mw = session ctx [ ("POSITION", ctx.full_position) ] in
  Middleware.set_config mw
    (Middleware.Config.with_adaptive_costs true (Middleware.config mw));
  let perturb_round = 3 in
  let rounds = if ctx.quick then 8 else 10 in
  let refits0 = Tango_obs.Counter.value Tango_profile.Adapt.refits in
  let trajectory = ref [] in
  let phase_sums = Hashtbl.create 4 in
  for round = 1 to rounds do
    if round = perturb_round then begin
      let c = Middleware.config mw in
      Middleware.set_config mw
        (Middleware.Config.with_roundtrip_spin
           (16 * c.Middleware.Config.roundtrip_spin)
           c)
    end;
    let refits_before = Tango_obs.Counter.value Tango_profile.Adapt.refits in
    let r = Middleware.query mw Queries.q1_sql in
    let refits_after = Tango_obs.Counter.value Tango_profile.Adapt.refits in
    let phase =
      if round < perturb_round then "baseline"
      else if refits_before > refits0 then "adapted"
      else "perturbed"
    in
    match r.Middleware.analysis with
    | None -> Fmt.pr "%5d  %-9s (no analysis)@." round phase
    | Some a ->
        let p_tm = (Middleware.factors mw).Tango_cost.Factors.p_tm in
        let q_cost = a.Tango_profile.Analyze.mean_q_cost in
        let q_rows = a.Tango_profile.Analyze.mean_q_rows in
        Fmt.pr "%5d  %-9s  %11.2f  %11.2f  %8.4f  %6d@." round phase q_cost
          q_rows p_tm (refits_after - refits0);
        let sum, n =
          Option.value ~default:(0.0, 0) (Hashtbl.find_opt phase_sums phase)
        in
        Hashtbl.replace phase_sums phase (sum +. q_cost, n + 1);
        trajectory :=
          Tango_obs.Json.Obj
            [
              ("round", Tango_obs.Json.Int round);
              ("phase", Tango_obs.Json.String phase);
              ("mean_q_cost", Tango_obs.Json.Float q_cost);
              ("mean_q_rows", Tango_obs.Json.Float q_rows);
              ("max_q_cost", Tango_obs.Json.Float a.Tango_profile.Analyze.max_q_cost);
              ("p_tm", Tango_obs.Json.Float p_tm);
              ("execute_us", Tango_obs.Json.Float r.Middleware.execute_us);
              ("refits", Tango_obs.Json.Int (refits_after - refits0));
            ]
          :: !trajectory
  done;
  let phase_mean name =
    match Hashtbl.find_opt phase_sums name with
    | Some (sum, n) when n > 0 -> Some (sum /. float_of_int n)
    | _ -> None
  in
  let jfloat = function
    | Some v -> Tango_obs.Json.Float v
    | None -> Tango_obs.Json.Null
  in
  let perturbed = phase_mean "perturbed" and adapted = phase_mean "adapted" in
  let improved =
    match (perturbed, adapted) with Some p, Some a -> a < p | _ -> false
  in
  let doc =
    Tango_obs.Json.Obj
      [
        ("experiment", Tango_obs.Json.String "adapt");
        ("perturb_round", Tango_obs.Json.Int perturb_round);
        ("rounds", Tango_obs.Json.List (List.rev !trajectory));
        ("mean_q_cost_baseline", jfloat (phase_mean "baseline"));
        ("mean_q_cost_perturbed", jfloat perturbed);
        ("mean_q_cost_adapted", jfloat adapted);
        ("adapted_improves", Tango_obs.Json.Bool improved);
        ( "slow_queries",
          Tango_obs.Json.Int
            (Tango_obs.Counter.value Tango_profile.Sentinel.slow_queries) );
        ( "plan_regressions",
          Tango_obs.Json.Int
            (Tango_obs.Counter.value Tango_profile.Sentinel.plan_regressions) );
      ]
  in
  bench_payload := Some doc;
  Fmt.pr "%s@." (Tango_obs.Json.to_string doc);
  Fmt.pr "# adapted mean q-error %s perturbed mean q-error@.@."
    (if improved then "<" else ">= (ADAPTATION DID NOT IMPROVE)")

(* ------------------------------------------------------------------ *)
(* obs: tracing & metrics export (Tango_obs)                            *)
(* ------------------------------------------------------------------ *)

let obs ctx =
  Fmt.pr "== Observability: per-query traces and middleware metrics (JSON) ==@.";
  Fmt.pr "(the same span tree `tango run --trace` renders, plus the global@.";
  Fmt.pr " metric registry after the workload — both machine-readable)@.";
  let _db, mw =
    session ctx [ ("POSITION", ctx.full_position); ("EMPLOYEE", ctx.full_employee) ]
  in
  Middleware.set_config mw
    (Middleware.Config.with_tracing true (Middleware.config mw));
  Tango_obs.Registry.reset ();
  let traces =
    List.map
      (fun (name, sql) ->
        let r = Middleware.query mw sql in
        let trace =
          match r.Middleware.trace with
          | Some span -> Tango_obs.Trace.to_json span
          | None -> Tango_obs.Json.Null
        in
        Tango_obs.Json.Obj
          [
            ("query", Tango_obs.Json.String name);
            ("rows", Tango_obs.Json.Int (Relation.cardinality r.Middleware.result));
            ("optimize_us", Tango_obs.Json.Float r.Middleware.optimize_us);
            ("execute_us", Tango_obs.Json.Float r.Middleware.execute_us);
            ("trace", trace);
          ])
      [
        ("query1", Queries.q1_sql);
        ("query2", Queries.q2_sql ~period_end:"1996-01-01");
        ("query3", Queries.q3_sql ~start_bound:"1996-01-01");
        ("query4", Queries.q4_sql);
      ]
  in
  let doc =
    Tango_obs.Json.Obj
      [
        ("traces", Tango_obs.Json.List traces);
        ("metrics", Tango_obs.Registry.to_json (Tango_obs.Registry.snapshot ()));
      ]
  in
  bench_payload := Some doc;
  Fmt.pr "%s@.@." (Tango_obs.Json.to_string doc)

(* ------------------------------------------------------------------ *)
(* baseline: per-query wall times + transfer counters (CI artifact)     *)
(* ------------------------------------------------------------------ *)

(* The regression baseline: every workload query warmed once, then timed
   over [runs] repetitions, with the per-run transfer counters recovered
   from a registry snapshot diff.  The JSON lands in BENCH_baseline.json
   so successive CI runs can be compared as artifacts. *)
let baseline ctx =
  Fmt.pr "== Baseline: per-query times and transfer counters (JSON artifact) ==@.";
  header
    [ "query"; "optimize[ms]"; "execute[ms]"; "rows"; "roundtrips";
      "tuples_shipped"; "dbms_queries" ];
  let _db, mw =
    session ctx [ ("POSITION", ctx.full_position); ("EMPLOYEE", ctx.full_employee) ]
  in
  let runs = if ctx.quick then 2 else 3 in
  let entries =
    List.map
      (fun (name, sql) ->
        ignore (Middleware.query mw sql) (* warm caches and statistics *);
        let before = Tango_obs.Registry.snapshot () in
        let reports = List.init runs (fun _ -> Middleware.query mw sql) in
        let after = Tango_obs.Registry.snapshot () in
        let delta = Tango_obs.Registry.diff after before in
        let per_run n = Tango_obs.Registry.counter_value delta n / runs in
        let mean f =
          List.fold_left (fun acc r -> acc +. f r) 0.0 reports
          /. float_of_int runs
        in
        let optimize_us = mean (fun r -> r.Middleware.optimize_us) in
        let execute_us = mean (fun r -> r.Middleware.execute_us) in
        let rows = Relation.cardinality (List.hd reports).Middleware.result in
        let roundtrips = per_run "client.roundtrips" in
        let tuples_shipped = per_run "client.tuples_shipped" in
        let dbms_queries = per_run "dbms.queries" in
        Fmt.pr "%-8s %11.1f %11.1f %6d %10d %14d %12d@." name
          (optimize_us /. 1000.0) (execute_us /. 1000.0) rows roundtrips
          tuples_shipped dbms_queries;
        Tango_obs.Json.Obj
          [
            ("query", Tango_obs.Json.String name);
            ("rows", Tango_obs.Json.Int rows);
            ("optimize_us", Tango_obs.Json.Float optimize_us);
            ("execute_us", Tango_obs.Json.Float execute_us);
            ("roundtrips", Tango_obs.Json.Int roundtrips);
            ("tuples_shipped", Tango_obs.Json.Int tuples_shipped);
            ("dbms_queries", Tango_obs.Json.Int dbms_queries);
          ])
      Queries.workload
  in
  bench_payload :=
    Some
      (Tango_obs.Json.Obj
         [
           ("runs_per_query", Tango_obs.Json.Int runs);
           ("queries", Tango_obs.Json.List entries);
         ]);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* throughput: plan cache x batch execution on the repeated workload    *)
(* ------------------------------------------------------------------ *)

(* Re-submit the whole workload [rounds] times under the four
   cache x batching configurations.  The cache turns the repeated rounds
   into hit-path runs (no parse, no optimize); batching amortizes the
   per-tuple iterator overhead.  The JSON payload carries the qps of
   every variant plus the speedup ratios the CI perf-smoke gates on.

   Unlike the analytical experiments, the relations here are small fixed
   prefixes (not governed by --scale): the cache amortizes the per-query
   {e fixed} costs (parse, statistics, memo search), so its regime is
   many repetitions of quick queries, not one scan-bound giant. *)
let throughput ctx =
  Fmt.pr "== Throughput: repeated workload, plan cache x batch execution ==@.";
  Fmt.pr "(every variant runs one untimed warm round, then %s timed rounds@."
    (if ctx.quick then "5" else "10");
  Fmt.pr " over Queries 1-4; parse+overhead = total - optimize - execute)@.";
  header
    [ "variant"; "qps"; "total[ms]"; "optimize[ms]"; "execute[ms]";
      "parse+overhead[ms]"; "cache_hits" ];
  let rounds = if ctx.quick then 5 else 10 in
  let position = position_prefix ctx 400 in
  let employee =
    let tuples = Relation.tuples ctx.full_employee in
    Relation.make
      (Relation.schema ctx.full_employee)
      (Array.sub tuples 0 (min 200 (Array.length tuples)))
  in
  let variants =
    [ ("cache+batch", true, true); ("cache-only", true, false);
      ("batch-only", false, true); ("neither", false, false) ]
  in
  let results =
    List.map
      (fun (name, cache, batching) ->
        let _db, mw =
          session ctx [ ("POSITION", position); ("EMPLOYEE", employee) ]
        in
        (* spin 0: the simulated network latency is identical across the
           four variants (both the cache and batching preserve round
           trips), so leaving it in only dilutes the middleware effect
           this experiment measures *)
        Middleware.set_config mw
          Middleware.Config.(
            Middleware.config mw |> with_plan_cache cache
            |> with_batching batching |> with_roundtrip_spin 0);
        (* warm round: fills the plan cache and the statistics cache so the
           timed rounds measure the steady state of each variant *)
        List.iter (fun (_, sql) -> ignore (Middleware.query mw sql))
          Queries.workload;
        let optimize_us = ref 0.0 and execute_us = ref 0.0 in
        let queries = rounds * List.length Queries.workload in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to rounds do
          List.iter
            (fun (_, sql) ->
              let r = Middleware.query mw sql in
              optimize_us := !optimize_us +. r.Middleware.optimize_us;
              execute_us := !execute_us +. r.Middleware.execute_us)
            Queries.workload
        done;
        let wall_s = Unix.gettimeofday () -. t0 in
        let qps = float_of_int queries /. wall_s in
        let total_ms = 1000.0 *. wall_s in
        let optimize_ms = !optimize_us /. 1000.0 in
        let execute_ms = !execute_us /. 1000.0 in
        let overhead_ms =
          Stdlib.max 0.0 (total_ms -. optimize_ms -. execute_ms)
        in
        let hits = (Middleware.plan_cache_stats mw).Tango_cache.Plan_cache.hits in
        Fmt.pr "%-12s %8.1f %10.1f %13.1f %12.1f %18.1f %10d@." name qps
          total_ms optimize_ms execute_ms overhead_ms hits;
        ( name,
          Tango_obs.Json.Obj
            [
              ("variant", Tango_obs.Json.String name);
              ("plan_cache", Tango_obs.Json.Bool cache);
              ("batching", Tango_obs.Json.Bool batching);
              ("rounds", Tango_obs.Json.Int rounds);
              ("queries", Tango_obs.Json.Int queries);
              ("qps", Tango_obs.Json.Float qps);
              ("total_ms", Tango_obs.Json.Float total_ms);
              ("optimize_ms", Tango_obs.Json.Float optimize_ms);
              ("execute_ms", Tango_obs.Json.Float execute_ms);
              ("parse_overhead_ms", Tango_obs.Json.Float overhead_ms);
              ("cache_hits", Tango_obs.Json.Int hits);
            ],
          qps ))
      variants
  in
  let qps_of name =
    match List.find_opt (fun (n, _, _) -> String.equal n name) results with
    | Some (_, _, qps) -> qps
    | None -> nan
  in
  let best = qps_of "cache+batch" in
  let cache_only = qps_of "cache-only" in
  let batch_only = qps_of "batch-only" in
  let neither = qps_of "neither" in
  let cache_on_beats_cache_off = best > batch_only && cache_only > neither in
  let doc =
    Tango_obs.Json.Obj
      [
        ("experiment", Tango_obs.Json.String "throughput");
        ( "variants",
          Tango_obs.Json.List (List.map (fun (_, j, _) -> j) results) );
        ("speedup_vs_neither", Tango_obs.Json.Float (best /. neither));
        ("speedup_cache", Tango_obs.Json.Float (best /. batch_only));
        ("speedup_batching", Tango_obs.Json.Float (best /. cache_only));
        ("cache_on_beats_cache_off", Tango_obs.Json.Bool cache_on_beats_cache_off);
      ]
  in
  bench_payload := Some doc;
  Fmt.pr "%s@." (Tango_obs.Json.to_string doc);
  Fmt.pr "# cache+batch vs neither: %.2fx; cache on vs off (batched): %.2fx%s@.@."
    (best /. neither) (best /. batch_only)
    (if cache_on_beats_cache_off then "" else "  (CACHE DID NOT HELP)")

(* ------------------------------------------------------------------ *)
(* param_cache: template cache vs exact cache on a literal-varying      *)
(* OLTP stream                                                          *)
(* ------------------------------------------------------------------ *)

(* An OLTP-style stream of three statement shapes in a skewed 70/20/10
   mix, every submission carrying fresh literals (rotating rate bounds
   and period ends), so the exact literal-keyed cache of PR 5 never
   hits — each spelling is new text — while auto-parameterization folds
   the whole stream onto three templates that hit from the second
   sighting on.  This is the regime the tentpole targets: plan reuse
   must survive literal variation, not just verbatim resubmission.
   The CI perf smoke greps the emitted gate:
   [template_cache_beats_exact_cache] = template hit rate >= 90% while
   the exact cache stays under 10%, at strictly higher qps. *)
let param_cache ctx =
  Fmt.pr "== Param cache: literal-varying OLTP stream, template vs exact ==@.";
  Fmt.pr "(same plan cache underneath; the variants differ only in@.";
  Fmt.pr " auto-parameterization — literal-keyed vs template-keyed entries)@.";
  header
    [ "variant"; "qps"; "total[ms]"; "hits"; "template_hits"; "misses";
      "hit_rate" ];
  let n = if ctx.quick then 150 else 400 in
  let position = position_prefix ctx 400 in
  let date i =
    Tango_temporal.Chronon.to_string
      (Tango_temporal.Chronon.of_string "1980-01-01" + (i * 37 mod 5000))
  in
  let stream =
    List.init n (fun i ->
        match i mod 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 | 6 ->
            (* hot shape, 70%: a two-sided rate selection whose bound
               pair (mod 37 x mod 53) never repeats inside the stream *)
            Printf.sprintf
              "VALIDTIME SELECT PosID, PayRate FROM POSITION WHERE PayRate > \
               %d AND PayRate < %d"
              (i mod 37)
              (40 + (i mod 53))
        | 7 | 8 -> Queries.q2_sql ~period_end:(date i)
        | _ -> Queries.q3_sql ~start_bound:(date i))
  in
  let results =
    List.map
      (fun (name, auto) ->
        let _db, mw = session ctx [ ("POSITION", position) ] in
        Middleware.set_config mw
          Middleware.Config.(
            Middleware.config mw |> with_plan_cache true
            |> with_auto_parameterize auto |> with_roundtrip_spin 0);
        let t0 = Unix.gettimeofday () in
        List.iter (fun sql -> ignore (Middleware.query mw sql)) stream;
        let wall_s = Unix.gettimeofday () -. t0 in
        let s = Middleware.plan_cache_stats mw in
        let hits = s.Tango_cache.Plan_cache.hits in
        let hit_rate = float_of_int hits /. float_of_int n in
        let qps = float_of_int n /. wall_s in
        Fmt.pr "%-14s %8.1f %10.1f %6d %13d %7d %9.2f@." name qps
          (1000.0 *. wall_s) hits s.Tango_cache.Plan_cache.template_hits
          s.Tango_cache.Plan_cache.misses hit_rate;
        ( name,
          Tango_obs.Json.Obj
            [
              ("variant", Tango_obs.Json.String name);
              ("auto_parameterize", Tango_obs.Json.Bool auto);
              ("queries", Tango_obs.Json.Int n);
              ("qps", Tango_obs.Json.Float qps);
              ("total_ms", Tango_obs.Json.Float (1000.0 *. wall_s));
              ("hits", Tango_obs.Json.Int hits);
              ( "template_hits",
                Tango_obs.Json.Int s.Tango_cache.Plan_cache.template_hits );
              ("misses", Tango_obs.Json.Int s.Tango_cache.Plan_cache.misses);
              ("hit_rate", Tango_obs.Json.Float hit_rate);
            ],
          qps,
          hit_rate ))
      [ ("exact-cache", false); ("template-cache", true) ]
  in
  let find name =
    match List.find_opt (fun (n', _, _, _) -> String.equal n' name) results with
    | Some (_, _, qps, rate) -> (qps, rate)
    | None -> (nan, nan)
  in
  let exact_qps, exact_rate = find "exact-cache" in
  let tmpl_qps, tmpl_rate = find "template-cache" in
  let gate = tmpl_rate >= 0.9 && exact_rate <= 0.1 && tmpl_qps > exact_qps in
  let doc =
    Tango_obs.Json.Obj
      [
        ("experiment", Tango_obs.Json.String "param_cache");
        ("queries", Tango_obs.Json.Int n);
        ( "variants",
          Tango_obs.Json.List (List.map (fun (_, j, _, _) -> j) results) );
        ("template_hit_rate", Tango_obs.Json.Float tmpl_rate);
        ("exact_hit_rate", Tango_obs.Json.Float exact_rate);
        ("speedup", Tango_obs.Json.Float (tmpl_qps /. exact_qps));
        ("template_cache_beats_exact_cache", Tango_obs.Json.Bool gate);
      ]
  in
  bench_payload := Some doc;
  Fmt.pr "%s@." (Tango_obs.Json.to_string doc);
  Fmt.pr "# template vs exact: %.2fx qps; hit rates %.2f vs %.2f%s@.@."
    (tmpl_qps /. exact_qps) tmpl_rate exact_rate
    (if gate then "" else "  (TEMPLATE CACHE DID NOT WIN)")

(* ------------------------------------------------------------------ *)
(* sharding: scatter/gather over N backends + partition pruning         *)
(* ------------------------------------------------------------------ *)

(* The workload over 1, 2 and 4 time-range shards of POSITION (quantile
   bounds on T1, EMPLOYEE replicated), with per-backend round trips and
   shipped tuples summed from the backend meters; then a pruning smoke —
   a period-restricted scan must leave the out-of-period shards idle
   while producing the same rows as the single-backend run. *)
let sharding ctx =
  Fmt.pr "== Sharded scatter/gather: workload vs shard count + pruning ==@.";
  Fmt.pr "(POSITION range-partitioned on T1 at the data's quantiles;@.";
  Fmt.pr " EMPLOYEE replicated; counters summed over the backend meters)@.";
  header [ "shards"; "query"; "execute[ms]"; "rows"; "roundtrips"; "tuples_shipped" ];
  let shard_counts = if ctx.quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let connect_n n =
    if n = 1 then begin
      let db = Tango_dbms.Database.create () in
      Uis.load ~scale:ctx.scale db;
      let mw = Middleware.connect ~roundtrip_spin:0 db in
      Middleware.adopt_factors mw ctx.factors;
      mw
    end
    else begin
      let topo =
        Uis.load_sharded ~scale:ctx.scale
          ~roundtrip_spins:(List.init n (fun _ -> 0))
          ~shards:n ()
      in
      let mw = Middleware.connect_topology topo in
      Middleware.adopt_factors mw ctx.factors;
      mw
    end
  in
  let sum f backends = List.fold_left (fun acc b -> acc + f b) 0 backends in
  let by_shard_count =
    List.map
      (fun n ->
        let mw = connect_n n in
        let backends = Tango_dbms.Topology.backends (Middleware.topology mw) in
        (* warm caches and statistics *)
        List.iter (fun (_, sql) -> ignore (Middleware.query mw sql)) Queries.workload;
        let queries =
          List.map
            (fun (qname, sql) ->
              List.iter Tango_dbms.Backend.reset_meters backends;
              let r = Middleware.query mw sql in
              let roundtrips = sum Tango_dbms.Backend.roundtrips backends in
              let tuples = sum Tango_dbms.Backend.tuples_shipped backends in
              Fmt.pr "%6d  %-6s %11.1f %6d %10d %14d@." n qname (ms r)
                (Relation.cardinality r.Middleware.result)
                roundtrips tuples;
              Tango_obs.Json.Obj
                [
                  ("query", Tango_obs.Json.String qname);
                  ( "rows",
                    Tango_obs.Json.Int
                      (Relation.cardinality r.Middleware.result) );
                  ("execute_us", Tango_obs.Json.Float r.Middleware.execute_us);
                  ("roundtrips", Tango_obs.Json.Int roundtrips);
                  ("tuples_shipped", Tango_obs.Json.Int tuples);
                ])
            Queries.workload
        in
        let doc =
          Tango_obs.Json.Obj
            [
              ("shards", Tango_obs.Json.Int n);
              ("queries", Tango_obs.Json.List queries);
            ]
        in
        if n > 1 then Tango_dbms.Topology.close (Middleware.topology mw);
        doc)
      shard_counts
  in
  (* pruning smoke: the UIS skew puts ~65 % of periods at 1995+, so a
     T1 < 1985 restriction excludes the later quantile shards entirely *)
  let prune_sql =
    "VALIDTIME SELECT PosID FROM POSITION WHERE T1 < DATE '1985-01-01' \
     ORDER BY PosID"
  in
  let mw1 = connect_n 1 in
  let r1 = Middleware.query mw1 prune_sql in
  let mwn = connect_n 3 in
  let backends = Tango_dbms.Topology.backends (Middleware.topology mwn) in
  List.iter Tango_dbms.Backend.reset_meters backends;
  let rn = Middleware.query mwn prune_sql in
  let idle =
    List.filter (fun b -> Tango_dbms.Backend.tuples_shipped b = 0) backends
  in
  let same =
    Relation.equal_multiset r1.Middleware.result rn.Middleware.result
  in
  let pruned = same && idle <> [] in
  Fmt.pr "# pruning smoke: %d of %d shards idle on T1 < 1985 (%s)@.@."
    (List.length idle) (List.length backends)
    (if pruned then "pruning reduces tuples shipped"
     else "NO PRUNING OBSERVED");
  Tango_dbms.Topology.close (Middleware.topology mwn);
  bench_payload :=
    Some
      (Tango_obs.Json.Obj
         [
           ("by_shard_count", Tango_obs.Json.List by_shard_count);
           ( "pruning",
             Tango_obs.Json.Obj
               [
                 ("idle_shards", Tango_obs.Json.Int (List.length idle));
                 ("total_shards", Tango_obs.Json.Int (List.length backends));
                 ("results_match", Tango_obs.Json.Bool same);
                 ( "pruning_reduces_tuples_shipped",
                   Tango_obs.Json.Bool pruned );
               ] );
         ])

(* ------------------------------------------------------------------ *)
(* tail: tail-latency attribution on a skewed 2-shard topology          *)
(* ------------------------------------------------------------------ *)

(* One shard pays a simulated per-round-trip latency, the other none:
   the tail is manufactured, so the attribution machinery must name the
   slow shard.  Checks the watchdog's dominant-backend/phase verdict and
   conservation — the per-phase breakdown must sum to the pipeline wall
   time, and the per-backend breakdown must account for the bulk of the
   execute phase (the spin makes boundary time dominate). *)
let tail ctx =
  Fmt.pr "== Tail-latency attribution: skewed 2-shard topology ==@.";
  (* shard1's per-round-trip spin is 50x the client default; shard0 pays
     nothing — enough to outweigh shard0's larger transfer volume (the
     replicated EMPLOYEE is scanned on the primary) *)
  let spins = [ 0; 1_000_000 ] in
  let slow_backend = "shard1" in
  let topo =
    Uis.load_sharded ~scale:ctx.scale ~roundtrip_spins:spins ~shards:2 ()
  in
  (* profiling off: its per-operator instrumentation would count as
     middleware execution and dilute the boundary share being measured *)
  let config =
    Middleware.Config.(default |> with_tracing true |> with_plan_cache true)
  in
  let mw = Middleware.connect_topology ~config topo in
  Middleware.adopt_factors mw ctx.factors;
  (* warm the plan cache before the observer is installed: the recorded
     runs are then cache hits, whose wall time the skewed boundary —
     not the optimizer — dominates *)
  List.iter (fun (_, sql) -> ignore (Middleware.query mw sql)) Queries.workload;
  let open Tango_monitor in
  let log = Event_log.create ~capacity:512 () in
  let endpoints = Endpoints.create ~log mw in
  let reps = if ctx.quick then 2 else 4 in
  for _ = 1 to reps do
    List.iter (fun (_, sql) -> ignore (Middleware.query mw sql)) Queries.workload
  done;
  let records =
    List.filter
      (fun (r : Event_log.record) -> r.Event_log.error = None)
      (Event_log.recent log)
  in
  (* conservation: phases vs wall time, backends vs execute *)
  let phase_sum (r : Event_log.record) =
    r.Event_log.parse_us +. r.Event_log.optimize_us +. r.Event_log.translate_us
    +. r.Event_log.mw_exec_us +. r.Event_log.transfer_us
    +. r.Event_log.gather_wait_us
  in
  let backend_sum (r : Event_log.record) =
    List.fold_left
      (fun acc (_, (b : Middleware.backend_breakdown)) ->
        acc +. b.Middleware.us +. b.Middleware.wait_us)
      0.0 r.Event_log.backends
  in
  let ratios f sel =
    List.filter_map
      (fun r -> match sel r with d when d > 0.0 -> Some (f r /. d) | _ -> None)
      records
  in
  let mean = function
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let phase_ratios = ratios phase_sum (fun r -> r.Event_log.total_us) in
  let backend_ratios =
    ratios backend_sum (fun (r : Event_log.record) -> r.Event_log.execute_us)
  in
  (* per-backend totals over the whole run *)
  header [ "backend"; "transfer[ms]"; "wait[ms]"; "rows"; "bytes" ];
  let lanes : (string, Middleware.backend_breakdown) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (r : Event_log.record) ->
      List.iter
        (fun (name, (b : Middleware.backend_breakdown)) ->
          let prev =
            Option.value
              (Hashtbl.find_opt lanes name)
              ~default:
                {
                  Middleware.rows = 0;
                  bytes = 0;
                  us = 0.0;
                  wait_us = 0.0;
                  alloc_bytes = 0;
                }
          in
          Hashtbl.replace lanes name
            {
              Middleware.rows = prev.Middleware.rows + b.Middleware.rows;
              bytes = prev.Middleware.bytes + b.Middleware.bytes;
              us = prev.Middleware.us +. b.Middleware.us;
              wait_us = prev.Middleware.wait_us +. b.Middleware.wait_us;
              alloc_bytes = prev.Middleware.alloc_bytes + b.Middleware.alloc_bytes;
            })
        r.Event_log.backends)
    records;
  Hashtbl.iter
    (fun name (b : Middleware.backend_breakdown) ->
      Fmt.pr "%-8s %12.1f %9.1f %6d %8d@." name
        (b.Middleware.us /. 1000.0)
        (b.Middleware.wait_us /. 1000.0)
        b.Middleware.rows b.Middleware.bytes)
    lanes;
  let verdict =
    Watchdog.evaluate (Endpoints.watchdog endpoints)
      ~now_us:(Tango_obs.now_us ()) ~slo:(Endpoints.slo endpoints) ~log
      ~feedback:(Middleware.profile_store mw)
      ~cache:(Middleware.plan_cache_stats mw)
      ~generation:(Tango_dbms.Topology.generation topo) ()
  in
  let dominant_name, dominant_share =
    match verdict.Watchdog.dominant_backend with
    | Some (n, s) -> (n, s)
    | None -> ("(none)", 0.0)
  in
  let dominant_phase =
    match verdict.Watchdog.dominant_phase with Some (n, _) -> n | None -> "(none)"
  in
  let dominant_ok = String.equal dominant_name slow_backend in
  Fmt.pr
    "# watchdog: dominant backend %s (share %.2f, expected %s — %s), \
     dominant phase %s@."
    dominant_name dominant_share slow_backend
    (if dominant_ok then "OK" else "WRONG")
    dominant_phase;
  Fmt.pr "# conservation: phases/wall mean %.3f, backends/execute mean %.3f@.@."
    (mean phase_ratios) (mean backend_ratios);
  Tango_dbms.Topology.close topo;
  bench_payload :=
    Some
      (Tango_obs.Json.Obj
         [
           ("shards", Tango_obs.Json.Int 2);
           ( "spins",
             Tango_obs.Json.List
               (List.map (fun s -> Tango_obs.Json.Int s) spins) );
           ("queries", Tango_obs.Json.Int (List.length records));
           ("dominant_backend", Tango_obs.Json.String dominant_name);
           ("dominant_share", Tango_obs.Json.Float dominant_share);
           ("dominant_phase", Tango_obs.Json.String dominant_phase);
           ("dominant_ok", Tango_obs.Json.Bool dominant_ok);
           ( "phase_conservation_mean",
             Tango_obs.Json.Float (mean phase_ratios) );
           ( "backend_over_execute_mean",
             Tango_obs.Json.Float (mean backend_ratios) );
         ])

(* ------------------------------------------------------------------ *)
(* telemetry: what does observing cost?                                 *)
(* ------------------------------------------------------------------ *)

(* The observability stack must not become the workload.  Re-submit the
   repeated workload under increasing instrumentation — everything off,
   GC/alloc attribution only, lock-contention profiling only, tracing
   only, then the full serve-path stack (attribution + contention +
   tracing + the event-log/SLO observer) — and report each variant's qps
   and its overhead relative to all-off.  Each variant takes the best of
   [passes] timed passes (the gate must measure instrumentation cost,
   not scheduler noise).  The payload carries [overhead_full] and the
   [overhead_ok] verdict the CI telemetry job gates on (< 10%). *)
let telemetry ctx =
  Fmt.pr "== Telemetry self-overhead: workload qps vs instrumentation ==@.";
  Fmt.pr "(one untimed warm round, then best of 3 passes of %s timed rounds@."
    (if ctx.quick then "5" else "10");
  Fmt.pr " over Queries 1-4 per variant; overhead relative to all-off)@.";
  header [ "variant"; "qps"; "total[ms]"; "overhead" ];
  let rounds = if ctx.quick then 5 else 10 in
  let passes = 3 in
  let position = position_prefix ctx 400 in
  let employee =
    let tuples = Relation.tuples ctx.full_employee in
    Relation.make
      (Relation.schema ctx.full_employee)
      (Array.sub tuples 0 (min 200 (Array.length tuples)))
  in
  (* Each variant names the subset of the stack it turns on. *)
  let variants =
    [
      ("all-off", (false, false, false, false));
      ("gc-attribution", (true, false, false, false));
      ("contention", (false, true, false, false));
      ("tracing", (false, false, true, false));
      ("full", (true, true, true, true));
    ]
  in
  let run_variant (name, (gc, contention, tracing, observer)) =
    let _db, mw =
      session ctx [ ("POSITION", position); ("EMPLOYEE", employee) ]
    in
    (* spin 0 for the same reason as the throughput experiment: the
       simulated network latency is identical across variants and only
       dilutes the effect under measurement *)
    Middleware.set_config mw
      Middleware.Config.(
        Middleware.config mw |> with_roundtrip_spin 0 |> with_telemetry gc
        |> with_tracing tracing);
    Tango_obs.Dsync.Profile.set_enabled contention;
    let endpoints =
      if observer then Some (Tango_monitor.Endpoints.create mw) else None
    in
    if not observer then Middleware.set_query_observer mw None;
    ignore endpoints;
    (* warm round: plan cache + statistics, so the timed passes measure
       the steady state of each variant *)
    List.iter (fun (_, sql) -> ignore (Middleware.query mw sql))
      Queries.workload;
    let queries = rounds * List.length Queries.workload in
    let best_qps = ref 0.0 in
    for _ = 1 to passes do
      let t0 = Tango_obs.mono_us () in
      for _ = 1 to rounds do
        List.iter (fun (_, sql) -> ignore (Middleware.query mw sql))
          Queries.workload
      done;
      let wall_s = (Tango_obs.mono_us () -. t0) /. 1e6 in
      let qps = float_of_int queries /. wall_s in
      if qps > !best_qps then best_qps := qps
    done;
    (name, (gc, contention, tracing, observer), queries, !best_qps)
  in
  let results = List.map run_variant variants in
  (* contention profiling is on by default in the serve path; leave the
     process the way we found it *)
  Tango_obs.Dsync.Profile.set_enabled true;
  let qps_of name =
    match List.find_opt (fun (n, _, _, _) -> String.equal n name) results with
    | Some (_, _, _, qps) -> qps
    | None -> nan
  in
  let off = qps_of "all-off" in
  let overhead qps = Stdlib.max 0.0 ((off -. qps) /. off) in
  let variant_json (name, (gc, contention, tracing, observer), queries, qps) =
    Fmt.pr "%-16s %9.1f %10.1f %9.1f%%@." name qps
      (1000.0 *. float_of_int queries /. qps)
      (100.0 *. overhead qps);
    Tango_obs.Json.Obj
      [
        ("variant", Tango_obs.Json.String name);
        ("gc_attribution", Tango_obs.Json.Bool gc);
        ("contention_profiling", Tango_obs.Json.Bool contention);
        ("tracing", Tango_obs.Json.Bool tracing);
        ("observer", Tango_obs.Json.Bool observer);
        ("queries", Tango_obs.Json.Int queries);
        ("qps", Tango_obs.Json.Float qps);
        ("overhead", Tango_obs.Json.Float (overhead qps));
      ]
  in
  let variant_docs = List.map variant_json results in
  let budget = 0.10 in
  let overhead_full = overhead (qps_of "full") in
  let overhead_ok = overhead_full < budget in
  let doc =
    Tango_obs.Json.Obj
      [
        ("experiment", Tango_obs.Json.String "telemetry");
        ("rounds", Tango_obs.Json.Int rounds);
        ("passes", Tango_obs.Json.Int passes);
        ("variants", Tango_obs.Json.List variant_docs);
        ("overhead_full", Tango_obs.Json.Float overhead_full);
        ("overhead_budget", Tango_obs.Json.Float budget);
        ("overhead_ok", Tango_obs.Json.Bool overhead_ok);
      ]
  in
  bench_payload := Some doc;
  Fmt.pr "%s@." (Tango_obs.Json.to_string doc);
  Fmt.pr "# full observability overhead: %.1f%% of all-off qps (budget %.0f%%)%s@.@."
    (100.0 *. overhead_full) (100.0 *. budget)
    (if overhead_ok then "" else "  (OVER BUDGET)")

(* ------------------------------------------------------------------ *)
(* micro: Bechamel micro-benchmarks                                     *)
(* ------------------------------------------------------------------ *)

let micro ctx =
  Fmt.pr "== Bechamel micro-benchmarks of core algorithms ==@.";
  let open Bechamel in
  let open Toolkit in
  let n = 2000 in
  let rel = position_prefix ctx (min n (Relation.cardinality ctx.full_position)) in
  let sorted_rel = Relation.sort [ Order.asc "PosID"; Order.asc "T1" ] rel in
  let qual alias =
    Relation.make
      (Schema.qualify alias (Schema.unqualify (Relation.schema rel)))
      (Relation.tuples sorted_rel)
  in
  let db = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db "POSITION" rel;
  let small = position_prefix ctx 250 in
  let db_small = Tango_dbms.Database.create () in
  Tango_dbms.Database.load_relation db_small "POSITION" small;
  let taggr_sql =
    Tango_sqlgen.Translate.translate
      (Op.temporal_aggregate [ "POSITION.PosID" ] [ Op.count_star "CNT" ]
         (Op.scan "POSITION" Uis.position_schema))
  in
  let tests =
    Test.make_grouped ~name:"tango"
      [
        Test.make
          ~name:(Printf.sprintf "TAGGR^M (%d tuples)" (Relation.cardinality rel))
          (Staged.stage (fun () ->
               ignore
                 (Tango_xxl.Cursor.to_relation
                    (Tango_xxl.Taggr.taggr ~group_by:[ "PosID" ]
                       ~aggs:[ Op.count_star "CNT" ]
                       (Tango_xxl.Cursor.of_relation sorted_rel)))));
        Test.make
          ~name:
            (Printf.sprintf "TJOIN^M (%dx%d)" (Relation.cardinality rel)
               (Relation.cardinality rel))
          (Staged.stage (fun () ->
               ignore
                 (Tango_xxl.Cursor.to_relation
                    (Tango_xxl.Joins.temporal_merge_join
                       ~pred:(Tango_sql.Ast.Lit (Value.Bool true))
                       ~left_keys:[ "A.PosID" ] ~right_keys:[ "B.PosID" ]
                       (Tango_xxl.Cursor.of_relation (qual "A"))
                       (Tango_xxl.Cursor.of_relation (qual "B"))))));
        Test.make
          ~name:(Printf.sprintf "SORT^M (%d tuples)" (Relation.cardinality rel))
          (Staged.stage (fun () ->
               ignore
                 (Tango_xxl.Cursor.to_relation
                    (Tango_xxl.Sort.sort [ Order.asc "T1" ]
                       (Tango_xxl.Cursor.of_relation rel)))));
        Test.make
          ~name:
            (Printf.sprintf "tuple marshalling (%d tuples)"
               (Relation.cardinality rel))
          (Staged.stage (fun () ->
               Relation.iter (fun t -> ignore (Tuple.marshal_roundtrip t)) rel));
        Test.make
          ~name:(Printf.sprintf "DBMS scan (%d tuples)" (Relation.cardinality rel))
          (Staged.stage (fun () ->
               ignore
                 (Tango_dbms.Database.query db "SELECT COUNT(*) AS C FROM POSITION")));
        Test.make
          ~name:
            (Printf.sprintf "TAGGR^D SQL (%d tuples)" (Relation.cardinality small))
          (Staged.stage (fun () ->
               ignore (Tango_dbms.Database.query_ast db_small taggr_sql)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some (t :: _) -> Fmt.pr "%-40s %12.1f us/run@." name (t /. 1000.0)
      | _ -> Fmt.pr "%-40s (no estimate)@." name)
    (List.sort compare rows);
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* main                                                                 *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig8", fig8); ("fig10", fig10); ("fig11a", fig11a); ("fig11b", fig11b);
    ("sel", sel); ("choice", choice); ("memo", memo); ("overhead", overhead);
    ("prefetch", prefetch); ("calib", calib); ("feedback", feedback);
    ("sharing", sharing); ("adapt", adapt); ("obs", obs);
    ("baseline", baseline); ("throughput", throughput);
    ("param-cache", param_cache);
    ("sharding", sharding); ("tail", tail); ("telemetry", telemetry);
    ("micro", micro) ]

let write_bench_json ~dir ~name ~scale ~quick ~wall_s payload =
  let doc =
    Tango_obs.Json.Obj
      [
        ("experiment", Tango_obs.Json.String name);
        ("scale", Tango_obs.Json.Float scale);
        ("quick", Tango_obs.Json.Bool quick);
        ("wall_s", Tango_obs.Json.Float wall_s);
        ( "payload",
          match payload with Some j -> j | None -> Tango_obs.Json.Null );
      ]
  in
  let file_name = String.map (fun c -> if c = '-' then '_' else c) name in
  let path = Filename.concat dir ("BENCH_" ^ file_name ^ ".json") in
  let oc = open_out path in
  output_string oc (Tango_obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "# wrote %s@." path

let () =
  let scale = ref 0.02 in
  let quick = ref false in
  let selected = ref [] in
  let out = ref "" in
  let spec =
    [
      ( "--scale",
        Arg.Set_float scale,
        "S  size multiplier vs the paper's relations (default 0.02)" );
      ("--quick", Arg.Set quick, "  fewer sweep points");
      ( "--experiment",
        Arg.String (fun s -> selected := String.split_on_char ',' s @ !selected),
        "NAMES  comma-separated experiments (default: all)" );
      ( "--out",
        Arg.Set_string out,
        "DIR  write a BENCH_<experiment>.json baseline per experiment \
         (wall time + machine-readable payload) into DIR" );
    ]
  in
  Arg.parse spec
    (fun s -> selected := s :: !selected)
    "tango bench: regenerate the paper's tables and figures";
  let to_run =
    match !selected with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> Some (n, f)
            | None ->
                Fmt.epr "unknown experiment %s (known: %s)@." n
                  (String.concat ", " (List.map fst experiments));
                None)
          (List.rev names)
  in
  if to_run = [] then exit 1;
  let t0 = Unix.gettimeofday () in
  let ctx = make_ctx ~scale:!scale ~quick:!quick in
  List.iter
    (fun (name, f) ->
      let e0 = Unix.gettimeofday () in
      bench_payload := None;
      f ctx;
      if !out <> "" then
        write_bench_json ~dir:!out ~name ~scale:!scale ~quick:!quick
          ~wall_s:(Unix.gettimeofday () -. e0)
          !bench_payload)
    to_run;
  Fmt.pr "# total bench time: %.1f s@." (Unix.gettimeofday () -. t0)
